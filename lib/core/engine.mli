(** The complete subsumption-checking pipeline (Algorithm 4).

    Given a new subscription [s] and the existing set [S], the engine
    runs, in order:

    + intersection pruning — drop candidates disjoint from [s]
      (an empty remainder is a definite NO);
    + conflict-table construction on the pruned set — O(m·k);
    + fast deterministic decisions — Corollary 1 (pairwise YES) and
      Corollary 3 (polyhedron-witness NO);
    + MCS — reduce [S] to the non-reducible candidate set [S'];
      an empty [S'] is a definite NO;
    + optionally ([use_probes]) the deterministic witness-guided
      probes of {!Probes} on [S'];
    + ρw / d computation (Algorithm 2, Eq. 1) on [S'];
    + RSPC (Algorithm 1) with [min d max_iterations] trials —
      a point witness is a definite NO, exhaustion a probabilistic YES.

    Every stage can be toggled off through {!config} for the ablation
    experiments (§6.5 compares RSPC with and without MCS). *)

type config = {
  delta : float;  (** Acceptable error probability δ, in (0,1). *)
  use_fast_decisions : bool;  (** Apply Corollaries 1 and 3. *)
  use_mcs : bool;  (** Reduce with MCS before RSPC. *)
  use_probes : bool;
      (** Try the deterministic witness-guided probes of {!Probes}
          before spending random trials — a sound extension (default
          off to keep the measured behaviour aligned with the paper;
          see the ablation experiment for its effect). *)
  use_pruning : bool;
      (** Drop candidates that do not intersect [s] before every other
          stage (sound: a non-intersecting subscription contains no
          point of [s], so it cannot contribute to a cover or
          invalidate a witness). Pruning runs {e first}, so with it on
          the whole report is a function of (s, the ordered
          intersecting candidate subset, rng): callers that pre-confine
          the candidate set to the subscriptions intersecting [s] — the
          sharded store — obtain bit-identical reports. Corollary 1
          verdicts are unaffected by pruning either way (a pairwise
          coverer always intersects [s]); Corollary 3 can only {e gain}
          witnesses from pruning, since removing rows preserves its
          Hall-style condition. Default on. *)
  max_iterations : int;
      (** Hard cap on RSPC trials; the theoretical [d] can reach 10^50
          (Fig. 7), so covered instances must stop somewhere. When the
          cap truncates [d], the achieved error bound is
          [(1 − ρw)^max_iterations], reported in {!report}. *)
}

val default_config : config
(** δ = 1e-6, all optimizations on, 100_000-trial cap. *)

val config :
  ?delta:float -> ?use_fast_decisions:bool -> ?use_mcs:bool ->
  ?use_probes:bool -> ?use_pruning:bool -> ?max_iterations:int -> unit ->
  config
(** {!default_config} with overrides.
    @raise Invalid_argument if [delta] is outside (0,1) or
    [max_iterations < 1]. *)

type reason =
  | Empty_set  (** [S] (or [S'] after MCS) contains no candidate. *)
  | Polyhedron of Witness.polyhedron  (** Corollary 3 witness. *)
  | Point of int array  (** RSPC found a point witness. *)

type verdict =
  | Covered_pairwise of int
      (** Definite YES: the indexed subscription singly covers [s]. *)
  | Covered_probably
      (** Probabilistic YES: no witness within the trial budget. *)
  | Not_covered of reason  (** Definite NO, with its evidence. *)

type report = {
  verdict : verdict;
  k_initial : int;  (** |S| before any reduction. *)
  k_pruned : int;
      (** Candidates left after intersection pruning (= k_initial when
          pruning is off). *)
  k_reduced : int;  (** |S'| checked by RSPC (= k_pruned if MCS off). *)
  mcs : Mcs.result option;
      (** MCS trace, when it ran — row indices remapped to positions in
          the {e original} [subs] array, so [kept] translates directly
          to store ids even when pruning dropped rows first. With
          pruning on, the trace partitions the {e pruned} candidate
          set; rows pruned away appear in neither list. *)
  rho : Rho.estimate option;
      (** ρw estimate on the reduced set, when the pipeline reached it. *)
  log10_d : float option;  (** Theoretical log10 d for δ, if computed. *)
  d_used : int;  (** Concrete trial budget handed to RSPC (0 if none). *)
  iterations : int;  (** RSPC trials actually performed. *)
  achieved_delta : float option;
      (** [(1 − ρw)^d_used] — equals δ unless the cap truncated [d]. *)
}

val is_covered : verdict -> bool
(** [true] on both YES verdicts. *)

val check :
  ?config:config -> ?pool:Domain_pool.t -> ?packed:Flat.t -> rng:Prng.t ->
  Subscription.t -> Subscription.t array -> report
(** [check ~rng s subs] answers whether [subs] jointly cover [s].
    Definite answers (NO, pairwise YES) are always correct;
    [Covered_probably] errs with probability at most
    [achieved_delta] (Proposition 1).

    [?pool] parallelises the RSPC stage over the pool's workers via
    {!Rspc_parallel.run_packed}. The report — verdict, witness,
    iteration count, every diagnostic — is bit-identical to the
    sequential engine for the same seed; a pool is purely a
    performance knob.

    [?packed] must be [Flat.pack] of [subs]; callers that check many
    subscriptions against a stable set (the subscription store) pass
    their cached pack so the engine skips re-packing. Omitted, the
    engine packs internally.
    @raise Invalid_argument on an arity mismatch or when [packed]
    disagrees with [subs]. *)

val check_publication :
  ?config:config -> ?pool:Domain_pool.t -> ?packed:Flat.t -> rng:Prng.t ->
  Publication.t -> Subscription.t array -> report
(** The general subsumption question for a publication (§1 models
    imprecise publications as boxes too): is the publication's box
    covered by the subscription union? A point publication degenerates
    to exact matching; a box publication is where the probabilistic
    machinery pays off. *)

val check_batch :
  ?config:config -> ?pool:Domain_pool.t -> ?packed:Flat.t -> rng:Prng.t ->
  Subscription.t array -> Subscription.t array -> report array
(** [check_batch ~rng ss subs] checks each [ss.(i)] against the same
    candidate set [subs], giving item [i] the i-th [Prng.split] of
    [rng]; the result array equals the sequential loop
    [check ~rng:(Prng.split rng) ss.(i) subs] over ascending [i]
    exactly. With [?pool], items are checked in parallel across
    workers — item-level parallelism only: each item runs the
    sequential RSPC internally, because a worker task must never
    submit to its own pool (see the {!Domain_pool} ownership
    contract). The per-item generators are pre-split into an array
    only when that parallel path engages (a pool with workers and more
    than one item); otherwise the call falls through to the sequential
    loop, splitting lazily per item with no pre-split overhead. Since
    every item owns its split, scheduling cannot perturb any result.
    [?packed] is shared by all items.
    @raise Invalid_argument on the per-item conditions of {!check}. *)

val theoretical_log10_d :
  ?use_mcs:bool -> delta:float -> Subscription.t -> Subscription.t array ->
  float
(** The paper's Figs. 7/9 quantity: [log10 d] from Algorithm 2 for the
    given δ, on the MCS-reduced set (default) or the full set. Returns
    [neg_infinity] when no trials would be needed (empty candidate
    set). *)

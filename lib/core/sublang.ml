(* Hand-rolled lexer/parser: the grammar is tiny and error messages
   matter more than parser-generator ceremony. *)

type token =
  | Ident of string  (* field names, bare symbols, timestamps *)
  | Number of int
  | Quoted of string
  | Eq
  | Ge
  | Le
  | And
  | In
  | Star
  | Lbracket
  | Rbracket
  | Comma

exception Error of string

let fail fmt =
  (Format.kasprintf (fun s -> raise (Error s)) fmt
  [@problint.allow exn_flow
    "documented typed parse-error contract: Sublang.Error is the module's \
     public error channel and parse entry points document raising it"])

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' -> true
  | _ -> false

(* Idents are permissive enough to swallow timestamps
   ("2006-03-31T16:00") and negative numbers are handled in the
   numeric branch. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let pos = ref 0 in
  while !pos < n do
    let c = input.[!pos] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '&' ->
        emit And;
        incr pos
    | '*' ->
        emit Star;
        incr pos
    | '[' ->
        emit Lbracket;
        incr pos
    | ']' ->
        emit Rbracket;
        incr pos
    | ',' ->
        emit Comma;
        incr pos
    | '=' ->
        emit Eq;
        incr pos
    | '>' ->
        if !pos + 1 < n && input.[!pos + 1] = '=' then begin
          emit Ge;
          pos := !pos + 2
        end
        else fail "at offset %d: expected >=" !pos
    | '<' ->
        if !pos + 1 < n && input.[!pos + 1] = '=' then begin
          emit Le;
          pos := !pos + 2
        end
        else fail "at offset %d: expected <=" !pos
    | '"' ->
        let start = !pos + 1 in
        let stop = ref start in
        while !stop < n && input.[!stop] <> '"' do
          incr stop
        done;
        if !stop >= n then fail "unterminated string at offset %d" !pos;
        emit (Quoted (String.sub input start (!stop - start)));
        pos := !stop + 1
    | '-' | '0' .. '9' ->
        (* Could be a number or a timestamp (2006-03-31...). Scan the
           full ident-ish run and decide. *)
        let start = !pos in
        incr pos;
        while !pos < n && is_ident_char input.[!pos] do
          incr pos
        done;
        let word = String.sub input start (!pos - start) in
        (match int_of_string_opt word with
        | Some v -> emit (Number v)
        | None -> emit (Ident word))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !pos in
        while !pos < n && is_ident_char input.[!pos] do
          incr pos
        done;
        let word = String.sub input start (!pos - start) in
        (match String.lowercase_ascii word with
        | "and" -> emit And
        | "in" -> emit In
        | "true" -> emit (Ident "true")
        | "false" -> emit (Ident "false")
        | _ -> emit (Ident word))
    | _ -> fail "unexpected character %C at offset %d" c !pos)
  done;
  List.rev !tokens

(* Interpret a token as a typed value for a given field. *)
let value_of_token codec ~field token =
  let spec =
    match List.assoc_opt field (Domain_codec.fields codec) with
    | Some s -> s
    | None -> fail "unknown field %s" field
  in
  match (spec, token) with
  | Domain_codec.Int_range _, Number v -> Domain_codec.Int v
  | Domain_codec.Enum _, (Ident s | Quoted s) -> Domain_codec.Sym s
  | Domain_codec.Enum _, Number v -> Domain_codec.Sym (string_of_int v)
  | Domain_codec.Flag, Ident "true" -> Domain_codec.Bool true
  | Domain_codec.Flag, Ident "false" -> Domain_codec.Bool false
  | Domain_codec.Minutes, (Ident s | Quoted s) -> Domain_codec.Time s
  | Domain_codec.Int_range _, _ -> fail "field %s expects an integer" field
  | Domain_codec.Enum _, _ -> fail "field %s expects a symbol" field
  | Domain_codec.Flag, _ -> fail "field %s expects true or false" field
  | Domain_codec.Minutes, _ -> fail "field %s expects a timestamp" field

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number v -> Printf.sprintf "number %d" v
  | Quoted s -> Printf.sprintf "string %S" s
  | Eq -> "'='"
  | Ge -> "'>='"
  | Le -> "'<='"
  | And -> "'&'"
  | In -> "'in'"
  | Star -> "'*'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Comma -> "','"

let parse_atoms codec tokens =
  (* atom ::= field (= | >= | <=) value | field in [v, v] | field = * *)
  let rec atom acc tokens =
    match tokens with
    | Ident field :: Eq :: Star :: rest ->
        next ((field, Domain_codec.Any) :: acc) rest
    | Ident field :: Eq :: v :: rest ->
        next ((field, Domain_codec.Eq (value_of_token codec ~field v)) :: acc) rest
    | Ident field :: Ge :: v :: rest ->
        next
          ((field, Domain_codec.At_least (value_of_token codec ~field v)) :: acc)
          rest
    | Ident field :: Le :: v :: rest ->
        next
          ((field, Domain_codec.At_most (value_of_token codec ~field v)) :: acc)
          rest
    | Ident field :: In :: Lbracket :: a :: Comma :: b :: Rbracket :: rest ->
        let lo = value_of_token codec ~field a in
        let hi = value_of_token codec ~field b in
        next ((field, Domain_codec.Between (lo, hi)) :: acc) rest
    | Ident field :: t :: _ ->
        fail "after field %s: unexpected %s" field (describe t)
    | t :: _ -> fail "expected a field name, found %s" (describe t)
    | [] -> fail "expected a constraint"
  and next acc = function
    | [] -> List.rev acc
    | And :: rest -> atom acc rest
    | t :: _ -> fail "expected '&' or end of input, found %s" (describe t)
  in
  atom [] tokens

let parse_subscription codec input =
  match
    match tokenize input with
    | [ Star ] | [] -> Ok (Domain_codec.subscription codec [])
    | tokens -> Ok (Domain_codec.subscription codec (parse_atoms codec tokens))
  with
  | ok -> ok
  | exception Error msg -> Result.Error msg
  | exception Invalid_argument msg -> Result.Error msg
  | exception Not_found -> Result.Error "unknown field or symbol"

let parse_publication codec input =
  let rec fields acc = function
    | [] -> List.rev acc
    | Comma :: rest -> fields acc rest
    | Ident field :: Eq :: v :: rest ->
        fields ((field, value_of_token codec ~field v) :: acc) rest
    | t :: _ -> fail "expected field = value, found %s" (describe t)
  in
  match Domain_codec.publication codec (fields [] (tokenize input)) with
  | pub -> Ok pub
  | exception Error msg -> Result.Error msg
  | exception Invalid_argument msg -> Result.Error msg
  | exception Not_found -> Result.Error "unknown field or symbol"

(* Schema files: "name : spec" lines. *)
let parse_schema_line line =
  match String.index_opt line ':' with
  | None -> fail "expected 'name : spec' in %S" line
  | Some i ->
      let name = String.trim (String.sub line 0 i) in
      let spec =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      let parsed =
        if spec = "flag" then Domain_codec.Flag
        else if spec = "minutes" then Domain_codec.Minutes
        else if String.length spec > 4 && String.sub spec 0 4 = "int[" then begin
          match
            String.sub spec 4 (String.length spec - 5) |> String.split_on_char ','
          with
          | [ lo; hi ] when spec.[String.length spec - 1] = ']' -> (
              match
                ( int_of_string_opt (String.trim lo),
                  int_of_string_opt (String.trim hi) )
              with
              | Some lo, Some hi -> Domain_codec.Int_range { lo; hi }
              | _ -> fail "bad int bounds in %S" line)
          | _ -> fail "expected int[lo, hi] in %S" line
        end
        else if String.length spec > 5 && String.sub spec 0 5 = "enum(" then begin
          if spec.[String.length spec - 1] <> ')' then
            fail "unterminated enum in %S" line;
          let body = String.sub spec 5 (String.length spec - 6) in
          Domain_codec.Enum
            (List.map String.trim (String.split_on_char ',' body))
        end
        else fail "unknown spec %S (want int[lo,hi], enum(...), flag, minutes)" spec
      in
      (name, parsed)

let parse_schema contents =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let lines =
    String.split_on_char '\n' contents
    |> List.map (fun l -> String.trim (strip_comment l))
    |> List.filter (fun l -> l <> "")
  in
  match Domain_codec.make (List.map parse_schema_line lines) with
  | codec -> Ok codec
  | exception Error msg -> Result.Error msg
  | exception Invalid_argument msg -> Result.Error msg

let subscription_to_string codec sub =
  (* Render via the codec's printer, then normalize to the grammar. *)
  let buf = Buffer.create 64 in
  let first = ref true in
  List.iteri
    (fun index (name, _spec) ->
      let range = Subscription.range sub index in
      let dom = Domain_codec.domain codec name in
      if not (Interval.equal range dom || Interval.is_full range) then begin
        if not !first then Buffer.add_string buf " & ";
        first := false;
        let value v =
          match Domain_codec.decode codec ~field:name v with
          | Domain_codec.Int i -> string_of_int i
          | Domain_codec.Sym s -> s
          | Domain_codec.Bool b -> string_of_bool b
          | Domain_codec.Time t -> t
        in
        let lo = max (Interval.lo range) (Interval.lo dom) in
        let hi = min (Interval.hi range) (Interval.hi dom) in
        if lo = hi then
          Buffer.add_string buf (Printf.sprintf "%s = %s" name (value lo))
        else if lo = Interval.lo dom then
          Buffer.add_string buf (Printf.sprintf "%s <= %s" name (value hi))
        else if hi = Interval.hi dom then
          Buffer.add_string buf (Printf.sprintf "%s >= %s" name (value lo))
        else
          Buffer.add_string buf
            (Printf.sprintf "%s in [%s, %s]" name (value lo) (value hi))
      end)
    (Domain_codec.fields codec);
  if !first then "*" else Buffer.contents buf

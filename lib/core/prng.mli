(** Deterministic pseudo-random number generator (splitmix64).

    RSPC is a Monte-Carlo algorithm, so reproducible experiments need a
    seedable, splittable generator that is independent of the global
    [Random] state. Splitmix64 passes BigCrush, is trivially
    deterministic across platforms, and supports cheap stream splitting
    for parallel workload generation.

    The state lives in a raw byte buffer so that integer draws perform
    {e zero} minor-heap allocation in native code — the RSPC trial loop
    ({!Flat}, {!Rspc}) relies on this; the bench asserts it. *)

type t
(** A mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator; equal seeds yield equal streams. *)

val of_int : int -> t
(** [of_int seed] is [create ~seed:(Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform over [0, n-1]. @raise Invalid_argument if
    [n <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform over the inclusive range [lo, hi].
    @raise Invalid_argument if [lo > hi]. *)

val in_interval : t -> Interval.t -> int
(** [in_interval t r] draws a uniform point of [r]. *)

val float : t -> float
(** [float t] is uniform over [0, 1). *)

val bool : t -> bool
(** A fair coin flip. *)

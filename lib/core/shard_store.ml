(* Sharded subscription fabric. The global bookkeeping (entries,
   coverer->children index, insertion order, counters) is shared with
   the flat store's design — coverer links may cross shards (a
   fallback full-range subscription can cover striped ones), so those
   structures stay global. Only the *active* set is partitioned: each
   shard holds the ascending ids, boxed subscriptions and cached
   {!Flat} pack of the actives homed in its region, and a covering
   check gathers candidates from the consulted shards alone. The
   equivalence argument with the flat store lives in the interface
   and in DESIGN.md "Sharded matching fabric". *)

type id = int

type entry = {
  sub : Subscription.t;
  mutable state : Subscription_store.placement;
  mutable expires_at : float; (* infinity = no lease *)
  home : int; (* static: the stripe map never changes *)
}

type shard = {
  region : Interval.t;
  (* Parallel arrays over the used prefix [0, an): active ids in
     strictly ascending order and their boxed subscriptions. *)
  mutable aids : int array;
  mutable asubs : Subscription.t array;
  mutable an : int;
  (* Cached pack of [asubs] prefix, rebuilt lazily after a mutation of
     this shard — the sharded analogue of the flat store's
     [packed_cache], invalidated per shard instead of per store. *)
  mutable pack : Flat.t option;
  (* Counting index over this shard's actives, maintained by the
     append/insert/delete primitives below: a consulted shard answers
     a publication through its index instead of scanning [asubs].
     Composes with the stripe routing — each index only ever sees the
     actives homed in its own shard. *)
  matcher : Counting_matcher.t;
}

type t = {
  policy : Subscription_store.policy;
  arity : int;
  rng : Prng.t;
  pool : Domain_pool.t option;
  shards : shard array; (* stripes 0..n-2, fallback at n-1 *)
  stripe_index : Interval_index.t; (* stripe regions, for fan-out *)
  stripe_lo : int array; (* stripe lower bounds, for routing *)
  entries : (id, entry) Hashtbl.t;
  children : (id, id list) Hashtbl.t;
  mutable order : id array;
  mutable order_n : int;
  mutable order_dead : int;
  mutable active_n : int;
  mutable next_id : id;
  mutable splits : int;
  mutable added : int;
  mutable dropped_covered : int;
  mutable removed_count : int;
  mutable promoted_count : int;
  mutable active_scans : int;
  mutable covered_scans : int;
}

(* Stripe regions: [domain0] cut into [nstripes] near-equal pieces,
   the outer pieces extended to the unbounded sentinels so every
   bounded first-attribute interval falls inside some stripe's span.
   Subscriptions whose interval crosses a cut (or lies outside the
   extended span entirely) route to the fallback. *)
let make_regions ~nstripes ~domain0 =
  if nstripes = 0 then [||]
  else begin
    let dlo = Interval.lo domain0 and dhi = Interval.hi domain0 in
    let span = dhi - dlo + 1 in
    let base = span / nstripes and rem = span mod nstripes in
    let regions = Array.make nstripes Interval.full in
    let cur = ref dlo in
    for i = 0 to nstripes - 1 do
      let w = base + if i < rem then 1 else 0 in
      let lo = !cur and hi = !cur + w - 1 in
      cur := hi + 1;
      let lo = if i = 0 then min lo Interval.unbounded_lo else lo in
      let hi = if i = nstripes - 1 then max hi Interval.unbounded_hi else hi in
      regions.(i) <- Interval.make ~lo ~hi
    done;
    regions
  end

let create ?(policy = Subscription_store.Group_policy Engine.default_config)
    ?pool ?(shards = 8) ?(domain0 = Interval.full) ~arity ~seed () =
  if arity < 1 then invalid_arg "Shard_store.create: arity < 1";
  if shards < 1 then invalid_arg "Shard_store.create: shards < 1";
  let nstripes = shards - 1 in
  if nstripes > 0 then begin
    let span = Interval.hi domain0 - Interval.lo domain0 + 1 in
    if span <= 0 then invalid_arg "Shard_store.create: domain0 span overflows";
    if span < nstripes then
      invalid_arg "Shard_store.create: domain0 narrower than the stripe count"
  end;
  (* Shard confinement *is* intersection pruning (see the interface):
     the group engine must keep pruning on for the flat-store
     equivalence to hold, so normalise the config here. *)
  let policy =
    match policy with
    | Subscription_store.Group_policy config ->
        Subscription_store.Group_policy
          { config with Engine.use_pruning = true }
    | (Subscription_store.No_coverage | Subscription_store.Pairwise_policy) as
      p ->
        p
  in
  let regions = make_regions ~nstripes ~domain0 in
  let mk_shard region =
    {
      region;
      aids = [||];
      asubs = [||];
      an = 0;
      pack = None;
      matcher = Counting_matcher.create ~arity ();
    }
  in
  let shards =
    Array.init shards (fun i ->
        if i < nstripes then mk_shard regions.(i) else mk_shard Interval.full)
  in
  {
    policy;
    arity;
    rng = Prng.of_int seed;
    pool;
    shards;
    stripe_index =
      Interval_index.build (List.init nstripes (fun i -> (i, regions.(i))));
    stripe_lo = Array.map Interval.lo regions;
    entries = Hashtbl.create 64;
    children = Hashtbl.create 64;
    order = Array.make 64 0;
    order_n = 0;
    order_dead = 0;
    active_n = 0;
    next_id = 0;
    splits = 0;
    added = 0;
    dropped_covered = 0;
    removed_count = 0;
    promoted_count = 0;
    active_scans = 0;
    covered_scans = 0;
  }

let policy t = t.policy
let arity t = t.arity
let size t = Hashtbl.length t.entries
let active_count t = t.active_n
let covered_count t = size t - active_count t
let shard_count t = Array.length t.shards
let fallback_shard t = Array.length t.shards - 1
let shard_actives t = Array.map (fun sh -> sh.an) t.shards
let splits_consumed t = t.splits

(* {2 Routing} *)

(* The unique stripe whose region fully contains the subscription's
   first-attribute interval; the fallback when it spans a cut or lies
   below the extended span. Regions are contiguous, so the candidate
   stripe is the last one starting at or below the interval. *)
let home_of t s =
  let nstripes = Array.length t.shards - 1 in
  if nstripes = 0 then 0
  else begin
    let iv = Subscription.range s 0 in
    let vlo = Interval.lo iv in
    if vlo < t.stripe_lo.(0) then nstripes
    else begin
      (* Largest i with stripe_lo.(i) <= vlo. *)
      let lo = ref 0 and hi = ref (nstripes - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if t.stripe_lo.(mid) <= vlo then lo := mid else hi := mid - 1
      done;
      if Interval.subset iv t.shards.(!lo).region then !lo else nstripes
    end
  end

(* Shards a box with first-attribute interval [q0] can overlap: the
   stripes sharing a point with [q0] (ascending), then the fallback.
   Actives in any other stripe are disjoint from the box on attribute
   0 — exactly what the engine's pruning would discard. *)
let consult_of_q0 t q0 =
  let stripes =
    List.sort_uniq Int.compare (Interval_index.overlapping t.stripe_index q0)
  in
  stripes @ [ Array.length t.shards - 1 ]

let consult_of_sub t s = consult_of_q0 t (Subscription.range s 0)

(* {2 Per-shard active arrays} *)

let shard_pack t sh =
  match sh.pack with
  | Some p -> p
  | None ->
      let p = Flat.pack ~m:t.arity (Array.sub sh.asubs 0 sh.an) in
      sh.pack <- Some p;
      p

let ensure_capacity sh s =
  if sh.an = Array.length sh.aids then begin
    let cap = max 8 (2 * sh.an) in
    let aids = Array.make cap 0 in
    Array.blit sh.aids 0 aids 0 sh.an;
    sh.aids <- aids;
    let asubs = Array.make cap s in
    Array.blit sh.asubs 0 asubs 0 sh.an;
    sh.asubs <- asubs
  end

(* First index in the used prefix with aids.(i) >= id. *)
let lower_bound sh id =
  let lo = ref 0 and hi = ref sh.an in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if sh.aids.(mid) < id then lo := mid + 1 else hi := mid
  done;
  !lo

(* Fresh arrivals carry the largest id so far: append keeps the array
   sorted. *)
let shard_append sh id s =
  ensure_capacity sh s;
  sh.aids.(sh.an) <- id;
  sh.asubs.(sh.an) <- s;
  sh.an <- sh.an + 1;
  Counting_matcher.add sh.matcher ~id s;
  sh.pack <- None

(* Promotions re-activate an old id: sorted insert. *)
let shard_insert sh id s =
  ensure_capacity sh s;
  let pos = lower_bound sh id in
  Array.blit sh.aids pos sh.aids (pos + 1) (sh.an - pos);
  Array.blit sh.asubs pos sh.asubs (pos + 1) (sh.an - pos);
  sh.aids.(pos) <- id;
  sh.asubs.(pos) <- s;
  sh.an <- sh.an + 1;
  Counting_matcher.add sh.matcher ~id s;
  sh.pack <- None

let shard_delete sh id =
  let pos = lower_bound sh id in
  Array.blit sh.aids (pos + 1) sh.aids pos (sh.an - pos - 1);
  Array.blit sh.asubs (pos + 1) sh.asubs pos (sh.an - pos - 1);
  sh.an <- sh.an - 1;
  Counting_matcher.remove sh.matcher ~id;
  sh.pack <- None

(* {2 Global bookkeeping (mirrors the flat store)} *)

let order_push t id =
  if t.order_n = Array.length t.order then begin
    let bigger = Array.make (2 * t.order_n) 0 in
    Array.blit t.order 0 bigger 0 t.order_n;
    t.order <- bigger
  end;
  t.order.(t.order_n) <- id;
  t.order_n <- t.order_n + 1

let order_compact t =
  let n = ref 0 in
  for i = 0 to t.order_n - 1 do
    let id = t.order.(i) in
    if Hashtbl.mem t.entries id then begin
      t.order.(!n) <- id;
      incr n
    end
  done;
  t.order_n <- !n;
  t.order_dead <- 0

let order_mark_dead t =
  t.order_dead <- t.order_dead + 1;
  if t.order_dead > t.order_n - t.order_dead then order_compact t

let fold_entries t ~init ~f =
  (* Insertion order = ascending id: deterministic without sorting. *)
  let acc = ref init in
  for i = 0 to t.order_n - 1 do
    let id = t.order.(i) in
    match Hashtbl.find_opt t.entries id with
    | Some e -> acc := f !acc id e
    | None -> ()
  done;
  !acc

let active t =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      match e.state with
      | Subscription_store.Active -> (id, e.sub) :: acc
      | Subscription_store.Covered _ -> acc)
  |> List.rev

let covered t =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      match e.state with
      | Subscription_store.Active -> acc
      | Subscription_store.Covered by -> (id, e.sub, by) :: acc)
  |> List.rev

let find t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.sub
  | None -> raise Not_found

let is_active t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> (
      match e.state with
      | Subscription_store.Active -> true
      | Subscription_store.Covered _ -> false)
  | None -> raise Not_found

let home_shard t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.home
  | None -> raise Not_found

let link_child t ~coverer ~child =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.children coverer) in
  if not (List.mem child cur) then
    Hashtbl.replace t.children coverer (child :: cur)

let unlink_child t ~coverer ~child =
  match Hashtbl.find_opt t.children coverer with
  | None -> ()
  | Some l -> (
      match List.filter (fun c -> c <> child) l with
      | [] -> Hashtbl.remove t.children coverer
      | l' -> Hashtbl.replace t.children coverer l')

(* {2 Classification} *)

(* Gather the candidates an arrival can interact with: the actives of
   the consulted shards that intersect its box, merged into ascending
   id order — exactly the subset the flat store's engine run would
   retain after pruning, in the same order, which is what makes the
   sharded verdicts bit-identical (prune-first contract,
   {!Engine.check}). *)
let gather_from t consult sbox =
  let cands = ref [] in
  List.iter
    (fun si ->
      let sh = t.shards.(si) in
      if sh.an > 0 then begin
        let rows = Flat.intersecting_rows (shard_pack t sh) sbox in
        for i = Array.length rows - 1 downto 0 do
          let r = rows.(i) in
          cands := (sh.aids.(r), sh.asubs.(r)) :: !cands
        done
      end)
    consult;
  let arr = Array.of_list !cands in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  (Array.map fst arr, Array.map snd arr)

let gather t s = gather_from t (consult_of_sub t s) (Flat.box_of_sub s)

(* Engine rows index the gathered candidate array (the engine's
   internal prune keeps all of them — they all intersect s). The
   MCS-less fallback records every gathered candidate, which equals
   the flat store's intersection-filtered list. *)
let placement_of_report cids report =
  match report.Engine.verdict with
  | Engine.Covered_pairwise row -> Subscription_store.Covered [ cids.(row) ]
  | Engine.Covered_probably ->
      let coverers =
        match report.Engine.mcs with
        | Some m -> List.map (fun row -> cids.(row)) m.Mcs.kept
        | None -> Array.to_list cids
      in
      Subscription_store.Covered coverers
  | Engine.Not_covered _ -> Subscription_store.Active

let classify_group t ?pool config s ~rng =
  let cids, csubs = gather t s in
  placement_of_report cids (Engine.check ~config ?pool ~rng s csubs)

(* One {!Prng.split} per group classification, in arrival /
   reclassification order — the flat store's exact stream. *)
let classify t s =
  match t.policy with
  | Subscription_store.No_coverage -> Subscription_store.Active
  | Subscription_store.Pairwise_policy -> (
      let cids, csubs = gather t s in
      (* A pairwise coverer contains s, hence intersects it, hence is
         gathered; candidates keep ascending id order, so the first
         coverer here is the first the flat store's full scan finds. *)
      match Pairwise.find_coverer s csubs with
      | Some i -> Subscription_store.Covered [ cids.(i) ]
      | None -> Subscription_store.Active)
  | Subscription_store.Group_policy config ->
      t.splits <- t.splits + 1;
      let rng = Prng.split t.rng in
      classify_group t ?pool:t.pool config s ~rng

let install t s ~state ~expires_at =
  let id = t.next_id in
  t.next_id <- id + 1;
  let home = home_of t s in
  Hashtbl.replace t.entries id { sub = s; state; expires_at; home };
  order_push t id;
  t.added <- t.added + 1;
  (match state with
  | Subscription_store.Covered by ->
      t.dropped_covered <- t.dropped_covered + 1;
      List.iter (fun coverer -> link_child t ~coverer ~child:id) by
  | Subscription_store.Active ->
      t.active_n <- t.active_n + 1;
      shard_append t.shards.(home) id s);
  (id, state)

let insert t s ~expires_at =
  if Subscription.arity s <> t.arity then
    invalid_arg "Shard_store.add: arity mismatch";
  if Float.is_nan expires_at then
    invalid_arg "Shard_store.add_with_expiry: NaN lease";
  let state = classify t s in
  install t s ~state ~expires_at

let add t s = insert t s ~expires_at:infinity
let add_with_expiry t s ~expires_at = insert t s ~expires_at

(* Batched insertion, defined as the sequential [add] loop. The
   parallel path reserves one child generator per item up front (the
   sequential stream), gathers each window item's candidates against
   the current state, classifies the window concurrently on the pool
   (each item sequential-engine on a {e copy} of its reserved child),
   then applies serially while tracking which shards received an
   active. An item's pre-computed placement is valid unless some
   earlier arrival turned active in a shard the item consults: a
   covered arrival never mutates the active set, and an active landing
   in a non-consulted stripe is disjoint from the item on attribute 0,
   so the engine's prune-first contract makes its report — hence the
   placement and coverer ids — identical. Invalidated items
   re-classify inline against the fully-updated store from a fresh
   copy of the same child, exactly as the sequential loop would. *)
(* Below this batch size the window machinery (per-window consult and
   gather arrays, pool dispatch, dirty tracking) costs more than it
   saves — BENCH_shard.json's scale phase showed pooled add_batch
   *losing* to one domain on small windows. Such batches run the
   sequential loop inline; the split pre-reservation makes the streams
   identical either way, so the cutover is observationally invisible. *)
let batch_inline_threshold = 32

let add_batch t subs =
  let n = Array.length subs in
  Array.iter
    (fun s ->
      if Subscription.arity s <> t.arity then
        invalid_arg "Shard_store.add_batch: arity mismatch")
    subs;
  let parallel =
    match (t.policy, t.pool) with
    | Subscription_store.Group_policy config, Some pool
      when n > batch_inline_threshold && Domain_pool.size pool > 0 ->
        Some (config, pool)
    | _ -> None
  in
  match parallel with
  | None ->
      let results = Array.make n (0, Subscription_store.Active) in
      for i = 0 to n - 1 do
        results.(i) <- add t subs.(i)
      done;
      results
  | Some (config, pool) ->
      let results = Array.make n (0, Subscription_store.Active) in
      (* Reserve per-item generators in arrival order — explicit loop:
         the split order is the observable effect. *)
      let rngs = Array.make n t.rng in
      for i = 0 to n - 1 do
        t.splits <- t.splits + 1;
        rngs.(i) <- Prng.split t.rng
      done;
      let nshards = Array.length t.shards in
      let window_cap = max 16 (8 * (Domain_pool.size pool + 1)) in
      let base = ref 0 in
      while !base < n do
        let b = !base in
        let window = min (n - b) window_cap in
        let consults =
          Array.init window (fun j -> consult_of_sub t subs.(b + j))
        in
        let cands =
          Array.init window (fun j ->
              gather_from t consults.(j) (Flat.box_of_sub subs.(b + j)))
        in
        let pre =
          Domain_pool.map_slices pool ~n:window ~f:(fun j ->
              let cids, csubs = cands.(j) in
              let rng = Prng.copy rngs.(b + j) in
              placement_of_report cids
                (Engine.check ~config ~rng subs.(b + j) csubs))
        in
        let dirty = Array.make nshards false in
        let any_dirty = ref false in
        for j = 0 to window - 1 do
          let idx = b + j in
          let state =
            if !any_dirty && List.exists (fun si -> dirty.(si)) consults.(j)
            then
              classify_group t ?pool:t.pool config subs.(idx)
                ~rng:(Prng.copy rngs.(idx))
            else pre.(j)
          in
          results.(idx) <- install t subs.(idx) ~state ~expires_at:infinity;
          match state with
          | Subscription_store.Active ->
              dirty.(home_of t subs.(idx)) <- true;
              any_dirty := true
          | Subscription_store.Covered _ -> ()
        done;
        base := b + window
      done;
      results

(* {2 Leases, removal, reclassification} *)

let expiry t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.expires_at
  | None -> raise Not_found

let renew t id ~expires_at =
  if Float.is_nan expires_at then invalid_arg "Shard_store.renew: NaN lease";
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.expires_at <- expires_at
  | None -> ()

(* Same orphan selection and ascending-id order as the flat store, so
   the re-classification split stream lines up; promotions re-enter
   their home shard by sorted insert. *)
let reclassify_orphans t ~departed_active =
  let orphans =
    fold_entries t ~init:[] ~f:(fun acc oid oe ->
        match oe.state with
        | Subscription_store.Covered by
          when List.exists (fun id -> List.mem id by) departed_active ->
            (oid, oe, by) :: acc
        | Subscription_store.Covered _ | Subscription_store.Active -> acc)
    |> List.rev
  in
  List.map
    (fun (oid, oe, old_by) ->
      List.iter (fun coverer -> unlink_child t ~coverer ~child:oid) old_by;
      match classify t oe.sub with
      | Subscription_store.Active ->
          oe.state <- Subscription_store.Active;
          t.active_n <- t.active_n + 1;
          shard_insert t.shards.(oe.home) oid oe.sub;
          t.promoted_count <- t.promoted_count + 1;
          (oid, Subscription_store.Active)
      | Subscription_store.Covered by ->
          oe.state <- Subscription_store.Covered by;
          List.iter (fun coverer -> link_child t ~coverer ~child:oid) by;
          (oid, Subscription_store.Covered by))
    orphans

let promoted_of_reclassified reclassified =
  List.filter_map
    (fun (oid, pl) ->
      match pl with
      | Subscription_store.Active -> Some oid
      | Subscription_store.Covered _ -> None)
    reclassified

let remove t id =
  let e =
    match Hashtbl.find_opt t.entries id with
    | Some e -> e
    | None -> raise Not_found
  in
  Hashtbl.remove t.entries id;
  order_mark_dead t;
  t.removed_count <- t.removed_count + 1;
  match e.state with
  | Subscription_store.Covered by ->
      List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by;
      []
  | Subscription_store.Active ->
      t.active_n <- t.active_n - 1;
      shard_delete t.shards.(e.home) id;
      Hashtbl.remove t.children id;
      promoted_of_reclassified (reclassify_orphans t ~departed_active:[ id ])

let expire t ~now =
  let expired =
    fold_entries t ~init:[] ~f:(fun acc id e ->
        if e.expires_at <= now then (id, e) :: acc else acc)
    |> List.rev
  in
  List.iter
    (fun (id, e) ->
      Hashtbl.remove t.entries id;
      order_mark_dead t;
      t.removed_count <- t.removed_count + 1;
      match e.state with
      | Subscription_store.Covered by ->
          List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by
      | Subscription_store.Active ->
          t.active_n <- t.active_n - 1;
          shard_delete t.shards.(e.home) id;
          Hashtbl.remove t.children id)
    expired;
  let expired_active =
    List.filter_map
      (fun (id, e) ->
        match e.state with
        | Subscription_store.Active -> Some id
        | Subscription_store.Covered _ -> None)
      expired
  in
  let reclassified =
    if expired_active = [] then []
    else reclassify_orphans t ~departed_active:expired_active
  in
  (List.map fst expired, promoted_of_reclassified reclassified)

(* {2 Matching} *)

(* First-attribute footprint of a publication, for shard fan-out. A
   malformed (zero-length) publication consults everything, which
   degrades to flat-store behaviour rather than missing hits. *)
let q0_of_pub p =
  match p with
  | Publication.Point values ->
      if Array.length values = 0 then Interval.full
      else Interval.point values.(0)
  | Publication.Box s ->
      if Subscription.arity s = 0 then Interval.full else Subscription.range s 0

let match_publication t p =
  let hits = ref [] in
  let matched_actives = ref [] in
  (* Actives outside the consulted shards are disjoint from the
     publication on attribute 0, so they cannot match: the hit list is
     the flat store's, for a fraction of the work. Each consulted
     shard answers through its counting index — no per-active
     [Publication.matches] scan at all. *)
  List.iter
    (fun si ->
      Counting_matcher.iter_matches t.shards.(si).matcher p ~f:(fun id ->
          matched_actives := id :: !matched_actives;
          hits := id :: !hits))
    (consult_of_q0 t (q0_of_pub p));
  (* Multi-level descent, identical to the flat store: only children
     recorded under a matched coverer can match. *)
  let tested = Hashtbl.create 16 in
  List.iter
    (fun coverer ->
      List.iter
        (fun child ->
          if not (Hashtbl.mem tested child) then begin
            Hashtbl.replace tested child ();
            t.covered_scans <- t.covered_scans + 1;
            match Hashtbl.find_opt t.entries child with
            | Some e -> if Publication.matches e.sub p then hits := child :: !hits
            | None -> ()
          end)
        (Option.value ~default:[] (Hashtbl.find_opt t.children coverer)))
    !matched_actives;
  List.sort Int.compare !hits

let match_publication_exhaustive t p =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      if Publication.matches e.sub p then id :: acc else acc)
  |> List.sort Int.compare

let check_publication t ~rng p =
  let s = Publication.to_sub p in
  let config =
    match t.policy with
    | Subscription_store.Group_policy config -> config
    | Subscription_store.No_coverage | Subscription_store.Pairwise_policy ->
        Engine.default_config
  in
  let _, csubs = gather t s in
  Engine.check ~config ?pool:t.pool ~rng s csubs

let stats t =
  {
    Subscription_store.added = t.added;
    dropped_covered = t.dropped_covered;
    removed = t.removed_count;
    promoted = t.promoted_count;
    active_scans = t.active_scans;
    covered_scans = t.covered_scans;
    index_hits =
      Array.fold_left
        (fun acc sh -> acc + Counting_matcher.inspections sh.matcher)
        0 t.shards;
  }

let[@problint.allow
     determinism
       "test-only invariant check: every Hashtbl traversal here \
        accumulates a boolean AND, so visit order cannot change the \
        verdict"] validate t =
  let ok = ref true in
  (* Flat-store coverage invariants: coverer references live and
     active, non-empty coverer lists, pairwise coverers really cover. *)
  Hashtbl.iter
    (fun _id e ->
      match e.state with
      | Subscription_store.Active -> ()
      | Subscription_store.Covered by ->
          if by = [] then ok := false;
          List.iter
            (fun c ->
              match Hashtbl.find_opt t.entries c with
              | Some ce ->
                  (match ce.state with
                  | Subscription_store.Active -> ()
                  | Subscription_store.Covered _ -> ok := false);
                  (match t.policy with
                  | Subscription_store.Pairwise_policy ->
                      if not (Subscription.covers_sub ce.sub e.sub) then
                        ok := false
                  | Subscription_store.No_coverage
                  | Subscription_store.Group_policy _ ->
                      ())
              | None -> ok := false)
            by)
    t.entries;
  (* Child index is the exact inverse of the covered-by relation. *)
  Hashtbl.iter
    (fun coverer children ->
      List.iter
        (fun child ->
          match Hashtbl.find_opt t.entries child with
          | Some ce -> (
              match ce.state with
              | Subscription_store.Covered by ->
                  if not (List.mem coverer by) then ok := false
              | Subscription_store.Active -> ok := false)
          | None -> ok := false)
        children)
    t.children;
  (* Shard map invariants. *)
  let total = Array.fold_left (fun acc sh -> acc + sh.an) 0 t.shards in
  if total <> t.active_n then ok := false;
  Array.iteri
    (fun si sh ->
      (* The per-shard counting index shadows exactly this shard's
         actives. *)
      if Counting_matcher.size sh.matcher <> sh.an then ok := false;
      for i = 0 to sh.an - 1 do
        if not (Counting_matcher.mem sh.matcher ~id:sh.aids.(i)) then
          ok := false;
        if i > 0 && sh.aids.(i - 1) >= sh.aids.(i) then ok := false;
        (match Hashtbl.find_opt t.entries sh.aids.(i) with
        | Some e ->
            (match e.state with
            | Subscription_store.Active -> ()
            | Subscription_store.Covered _ -> ok := false);
            if e.home <> si then ok := false;
            if
              not
                ((e.sub == sh.asubs.(i))
                [@problint.allow
                  unsafe
                    "identity check is the invariant: the shard array must \
                     alias the entry's subscription, not merely equal it"])
            then ok := false;
            if home_of t e.sub <> si then ok := false
        | None -> ok := false);
        (match sh.pack with
        | None -> ()
        | Some p ->
            if Flat.k p <> sh.an || Flat.m p <> t.arity then ok := false
            else
              for j = 0 to t.arity - 1 do
                let iv = Subscription.range sh.asubs.(i) j in
                if
                  Flat.lo p ~row:i ~attr:j <> Interval.lo iv
                  || Flat.hi p ~row:i ~attr:j <> Interval.hi iv
                then ok := false
              done)
      done)
    t.shards;
  (* Every active entry is present in its home shard. *)
  Hashtbl.iter
    (fun id e ->
      match e.state with
      | Subscription_store.Covered _ -> ()
      | Subscription_store.Active ->
          let sh = t.shards.(e.home) in
          let pos = lower_bound sh id in
          if pos >= sh.an || sh.aids.(pos) <> id then ok := false)
    t.entries;
  !ok

type config = {
  delta : float;
  use_fast_decisions : bool;
  use_mcs : bool;
  use_probes : bool;
  use_pruning : bool;
  max_iterations : int;
}

let default_config =
  {
    delta = 1e-6;
    use_fast_decisions = true;
    use_mcs = true;
    use_probes = false;
    use_pruning = true;
    max_iterations = 100_000;
  }

let config ?(delta = default_config.delta)
    ?(use_fast_decisions = default_config.use_fast_decisions)
    ?(use_mcs = default_config.use_mcs)
    ?(use_probes = default_config.use_probes)
    ?(use_pruning = default_config.use_pruning)
    ?(max_iterations = default_config.max_iterations) () =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Engine.config: delta must lie in (0, 1)";
  if max_iterations < 1 then
    invalid_arg "Engine.config: max_iterations must be >= 1";
  { delta; use_fast_decisions; use_mcs; use_probes; use_pruning;
    max_iterations }

type reason =
  | Empty_set
  | Polyhedron of Witness.polyhedron
  | Point of int array

type verdict =
  | Covered_pairwise of int
  | Covered_probably
  | Not_covered of reason

type report = {
  verdict : verdict;
  k_initial : int;
  k_pruned : int;
  k_reduced : int;
  mcs : Mcs.result option;
  rho : Rho.estimate option;
  log10_d : float option;
  d_used : int;
  iterations : int;
  achieved_delta : float option;
}

let is_covered = function
  | Covered_pairwise _ | Covered_probably -> true
  | Not_covered _ -> false

let base_report ~verdict ~k_initial ~k_pruned ~k_reduced =
  {
    verdict;
    k_initial;
    k_pruned;
    k_reduced;
    mcs = None;
    rho = None;
    log10_d = None;
    d_used = 0;
    iterations = 0;
    achieved_delta = None;
  }

(* Remap MCS row indices (relative to the pruned candidate array) back
   to positions in the caller's original array so that store-level
   consumers can translate rows to ids regardless of pruning. *)
let remap_mcs keep result =
  {
    result with
    Mcs.kept = List.map (fun i -> keep.(i)) result.Mcs.kept;
    removed = List.map (fun i -> keep.(i)) result.Mcs.removed;
  }

let check ?(config = default_config) ?pool ?packed ~rng s subs =
  let k_initial = Array.length subs in
  if k_initial = 0 then
    base_report ~verdict:(Not_covered Empty_set) ~k_initial ~k_pruned:0
      ~k_reduced:0
  else begin
    let m = Subscription.arity s in
    let packed =
      match packed with
      | Some p ->
          if Flat.k p <> k_initial || Flat.m p <> m then
            invalid_arg "Engine.check: packed set does not match subs";
          p
      | None -> Flat.pack ~m subs
    in
    (* Candidate pruning runs FIRST: a subscription that does not
       intersect s contains no point of s, so it can neither contribute
       to a cover nor invalidate a witness — dropping it shrinks k for
       the conflict table, the fast decisions, MCS, rho and every RSPC
       trial without changing the answer. Pruning before the fast
       decisions makes the whole report a function of (s, the ordered
       intersecting subset, rng) alone: a caller that pre-confines the
       candidate set to the subscriptions intersecting s (the sharded
       store) gets a bit-identical report to one that passes the full
       set. Corollary 1 is insensitive to the reorder (an all-undefined
       row is a coverer, hence intersects s, hence survives the prune
       in the same relative position); Corollary 3 only gains coverage
       (removing rows preserves the Hall-style condition). *)
    let sbox = Flat.box_of_sub s in
    (* [None] means "pruning off": the identity mapping, kept symbolic
       so the unpruned path allocates no index array and skips the
       gather bookkeeping entirely. *)
    let keep =
      if config.use_pruning then Some (Flat.intersecting_rows packed sbox)
      else None
    in
    let k_pruned =
      match keep with Some rows -> Array.length rows | None -> k_initial
    in
    if k_pruned = 0 then
      base_report ~verdict:(Not_covered Empty_set) ~k_initial ~k_pruned
        ~k_reduced:0
    else begin
      let pruned_packed, pruned_subs =
        match keep with
        | Some rows when Array.length rows < k_initial ->
            (Flat.gather packed rows, Array.map (fun i -> subs.(i)) rows)
        | Some _ | None -> (packed, subs)
      in
      let pruned_table =
        Conflict_table.build_flat ~s ~subs:pruned_subs pruned_packed
      in
      (* Fast-decision rows index the pruned candidate array; report
         them relative to the caller's original array so store-level
         consumers can translate rows to ids regardless of pruning. *)
      let remap_row row =
        match keep with Some rows -> rows.(row) | None -> row
      in
      let fast =
        if config.use_fast_decisions then Fast_decision.decide pruned_table
        else Fast_decision.Unknown
      in
      match fast with
      | Fast_decision.Covered_pairwise row ->
          base_report
            ~verdict:(Covered_pairwise (remap_row row))
            ~k_initial ~k_pruned ~k_reduced:k_pruned
      | Fast_decision.Not_covered_witness w ->
          base_report ~verdict:(Not_covered (Polyhedron w)) ~k_initial
            ~k_pruned ~k_reduced:k_pruned
      | Fast_decision.Unknown ->
          let mcs_result, reduced_packed, reduced_subs, reduced_table =
            if config.use_mcs then begin
              let result = Mcs.run pruned_table in
              if List.length result.Mcs.kept = k_pruned then
                (Some result, pruned_packed, pruned_subs, pruned_table)
              else begin
                let rows = Array.of_list result.Mcs.kept in
                let rp = Flat.gather pruned_packed rows in
                let rs = Array.map (fun i -> pruned_subs.(i)) rows in
                (Some result, rp, rs, Conflict_table.build_flat ~s ~subs:rs rp)
              end
            end
            else (None, pruned_packed, pruned_subs, pruned_table)
          in
          let mcs_report =
            match keep with
            | Some rows -> Option.map (remap_mcs rows) mcs_result
            | None -> mcs_result
          in
          let k_reduced = Array.length reduced_subs in
          if k_reduced = 0 then
            {
              (base_report ~verdict:(Not_covered Empty_set) ~k_initial
                 ~k_pruned ~k_reduced)
              with mcs = mcs_report;
            }
          else begin
            match
              if config.use_probes then Probes.try_probes reduced_table
              else None
            with
            | Some p ->
                {
                  (base_report ~verdict:(Not_covered (Point p)) ~k_initial
                     ~k_pruned ~k_reduced)
                  with mcs = mcs_report;
                }
            | None ->
                let rho_estimate = Rho.estimate reduced_table in
                let log10_d = Rho.log10_d rho_estimate ~delta:config.delta in
                let d_used =
                  Rho.d_capped rho_estimate ~delta:config.delta
                    ~cap:config.max_iterations
                in
                let run =
                  match pool with
                  | Some pool ->
                      Rspc_parallel.run_packed ~pool ~rng ~d:d_used ~sbox
                        reduced_packed
                  | None -> Rspc.run_packed ~rng ~d:d_used ~sbox reduced_packed
                in
                let verdict =
                  match run.Rspc.outcome with
                  | Rspc.Not_covered p -> Not_covered (Point p)
                  | Rspc.Probably_covered -> Covered_probably
                in
                let achieved_delta =
                  let r = Rho.rho rho_estimate in
                  if r >= 1.0 then 0.0
                  else exp (float_of_int d_used *. log1p (-.r))
                in
                {
                  verdict;
                  k_initial;
                  k_pruned;
                  k_reduced;
                  mcs = mcs_report;
                  rho = Some rho_estimate;
                  log10_d = Some log10_d;
                  d_used;
                  iterations = run.Rspc.iterations;
                  achieved_delta = Some achieved_delta;
                }
          end
        end
  end

let check_publication ?config ?pool ?packed ~rng pub subs =
  check ?config ?pool ?packed ~rng (Publication.to_sub pub) subs

(* Batch classification: item-level parallelism only. Each item runs
   the full sequential pipeline (fast decisions, MCS, sequential RSPC)
   on a pool worker — never the parallel RSPC, which would have worker
   tasks submitting to their own pool (a deadlock; see the ownership
   contract in domain_pool.mli). Item i draws the i-th split of [rng],
   so the result array is identical to the sequential per-item loop no
   matter how items land on workers. The rng array is materialised
   only when the parallel path actually engages (pool present, with
   workers, more than one item); the sequential fallthrough splits
   lazily per item and carries no per-item pre-split overhead. *)
let check_batch ?(config = default_config) ?pool ?packed ~rng ss subs =
  let n = Array.length ss in
  match pool with
  | Some pool when n > 1 && Domain_pool.size pool > 0 ->
      let rngs = Array.make n rng in
      for i = 0 to n - 1 do
        rngs.(i) <- Prng.split rng
      done;
      Domain_pool.map_slices pool ~n ~f:(fun i ->
          check ~config ?packed ~rng:rngs.(i) ss.(i) subs)
  | Some _ | None ->
      if n = 0 then [||]
      else begin
        let first = check ~config ?packed ~rng:(Prng.split rng) ss.(0) subs in
        let out = Array.make n first in
        for i = 1 to n - 1 do
          out.(i) <- check ~config ?packed ~rng:(Prng.split rng) ss.(i) subs
        done;
        out
      end

let theoretical_log10_d ?(use_mcs = true) ~delta s subs =
  if Array.length subs = 0 then neg_infinity
  else begin
    let table = Conflict_table.build ~s subs in
    let table =
      if not use_mcs then Some table
      else begin
        let result = Mcs.run table in
        let reduced = Mcs.reduced_subs table result in
        if Array.length reduced = 0 then None
        else Some (Conflict_table.build ~s reduced)
      end
    in
    match table with
    | None -> neg_infinity
    | Some table -> Rho.log10_d (Rho.estimate table) ~delta
  end

(** Conflict tables (Definition 2).

    A conflict table [T] relates a tested subscription [s] to a set
    [S = {s1, ..., sk}]. [T] has one row per [si] and, per attribute [j],
    two columns: the negation of the lower-bound predicate
    [not (x_j >= lo_i^j) = x_j < lo_i^j] and the negation of the
    upper-bound predicate [x_j > hi_i^j]. A cell is {e defined} iff the
    corresponding negation is satisfiable together with [s] —
    geometrically, iff [si] leaves a strip of [s] uncovered on that side
    of attribute [j]. Construction costs O(m·k).

    Restricted to [s], a defined cell denotes a sub-interval of [s]'s
    range on its attribute ({!strip}); two cells on the same attribute
    {e conflict} (Definition 5) exactly when those strips are disjoint —
    a [x_j < a] cell can only conflict with a [x_j > b] cell. *)

type side =
  | Low   (** Negated lower bound: [x_j < lo_i^j]. *)
  | High  (** Negated upper bound: [x_j > hi_i^j]. *)

type cell =
  | Undefined
  | Defined of { side : side; bound : int }
      (** [bound] is the original predicate bound of [si]: the negation
          is [x < bound] for {!Low} and [x > bound] for {!High}. *)

type t
(** An immutable conflict table for one subsumption question. *)

val build : s:Subscription.t -> Subscription.t array -> t
(** [build ~s subs] constructs the table relating [s] to [subs] in
    O(m·k). The table stores cells as flat definedness/bound planes
    (three buffers total, no per-cell boxing); {!cell} reconstructs
    the variant view on demand.
    @raise Invalid_argument on an arity mismatch. *)

val build_flat : s:Subscription.t -> subs:Subscription.t array -> Flat.t -> t
(** [build_flat ~s ~subs packed] is {!build} reading the bounds from an
    already-packed {!Flat.t} instead of the boxed subscriptions —
    [packed] must be [Flat.pack] of [subs] (the engine reuses its
    pruning pack here). [subs] is retained for {!subs}/{!s} accessors.
    @raise Invalid_argument when [packed] and [subs] disagree on [k] or
    [m]. *)

val s : t -> Subscription.t
(** The tested subscription. *)

val subs : t -> Subscription.t array
(** The row subscriptions, in row order (not copied — treat as
    read-only). *)

val rows : t -> int
(** [k], the number of subscriptions. *)

val arity : t -> int
(** [m], the number of attributes (the table has [2m] columns). *)

val cell : t -> row:int -> attr:int -> side:side -> cell
(** Cell accessor. @raise Invalid_argument out of bounds. *)

val defined_count : t -> row:int -> int
(** [t_i]: the number of defined cells in a row, precomputed at build
    time (O(1) lookup). *)

val row_all_undefined : t -> row:int -> bool
(** Corollary 1 test: true iff [si] covers [s] pairwise. *)

val row_all_defined : t -> row:int -> bool
(** Corollary 2 test: true iff [s] covers [si] on every attribute. *)

val strip : t -> row:int -> attr:int -> side:side -> Interval.t option
(** [strip] is the portion of [s]'s range on [attr] selected by the
    cell's negated predicate: [None] when the cell is undefined, and the
    non-empty interval [s ∧ ¬s_i^j] projected on [attr] otherwise. *)

val cells_conflict :
  t -> row1:int -> attr1:int -> side1:side -> row2:int -> attr2:int ->
  side2:side -> bool
(** Definition 5: two defined cells of distinct rows conflict iff
    [s ∧ T1 ∧ T2] is unsatisfiable, i.e. they constrain the same
    attribute and their strips are disjoint. Returns [false] if either
    cell is undefined or the rows coincide. *)

val fold_defined :
  t -> row:int -> init:'a -> f:('a -> attr:int -> side:side -> bound:int -> 'a)
  -> 'a
(** Folds over the defined cells of a row in column order. *)

val pp : Format.formatter -> t -> unit
(** Renders the table in the style of the paper's Table 5. *)

(** The counting algorithm for publication matching (Yan &
    García-Molina, the paper's reference [18] — "all algorithms rely on
    some version of the counting algorithm").

    Instead of testing each subscription against a publication
    (O(m·k)), the matcher indexes every {e constrained} range in a
    per-attribute {!Interval_index}; a publication stabs each index
    once and counts, per subscription, how many of its predicates were
    satisfied. A subscription matches iff the count equals its number
    of constrained attributes. Cost per publication:
    O(Σ_j (log k + hits_j)) — sub-linear in k when selectivity is
    decent.

    The structure is mutable (add/remove) with lazy per-attribute
    rebuilds: mutations mark attributes dirty; the next match call
    rebuilds only the dirty indexes. This matches pub/sub reality —
    publication rates dwarf subscription-change rates (§2). *)

type t

val create : arity:int -> unit -> t
(** @raise Invalid_argument if [arity < 1]. *)

val arity : t -> int
val size : t -> int

val add : t -> id:int -> Subscription.t -> unit
(** @raise Invalid_argument on an arity mismatch or a duplicate id. *)

val remove : t -> id:int -> unit
(** @raise Not_found for an unknown id. *)

val mem : t -> id:int -> bool

val match_point : t -> int array -> int list
(** Ids of all subscriptions matching the point, ascending.
    @raise Invalid_argument on an arity mismatch. *)

val match_publication : t -> Publication.t -> int list
(** Point publications use the counting path; box publications need
    containment, not stabbing, and scan a lazily-rebuilt {!Flat} pack
    of the whole set — a linear walk over packed bounds instead of a
    hashtable traversal chasing boxed intervals.
    @raise Invalid_argument on an arity mismatch (box publications). *)

val rebuild : t -> unit
(** Force all dirty indexes to rebuild now (e.g. before a latency
    measurement). Matching calls do this lazily anyway. *)

(** The counting algorithm for publication matching (Yan &
    García-Molina, the paper's reference [18] — "all algorithms rely on
    some version of the counting algorithm").

    Instead of testing each subscription against a publication
    (O(m·k)), the matcher indexes every {e constrained} range in a
    per-attribute {!Interval_index.Dyn}; a publication stabs each index
    once and counts, per subscription, how many of its predicates were
    satisfied. A subscription matches iff the count equals its number
    of constrained attributes. Cost per publication:
    O(Σ_j (log k + hits_j)) — sub-linear in k when selectivity is
    decent.

    The structure is fully incremental: add/remove maintain the
    per-attribute indexes directly (amortized compaction rides the
    mutation path), and the match path allocates no scratch state —
    hit counters live in preallocated slot-indexed [int array]s reset
    in O(1) per publication by a generation stamp, and slots recycled
    across removals carry fresh stamps so stale index entries can
    never score. Box publications run the same counting scheme with a
    per-attribute {e containment} query instead of a stab. *)

type t

val create : arity:int -> unit -> t
(** @raise Invalid_argument if [arity < 1]. *)

val arity : t -> int
val size : t -> int

val add : t -> id:int -> Subscription.t -> unit
(** O(#constrained) amortized.
    @raise Invalid_argument on an arity mismatch or a duplicate id. *)

val remove : t -> id:int -> unit
(** O(#constrained) amortized; the subscription's index entries are
    retired lazily (filtered on the query path, reclaimed by the next
    compaction). @raise Not_found for an unknown id. *)

val mem : t -> id:int -> bool

val match_point : t -> int array -> int list
(** Ids of all subscriptions matching the point, ascending.
    @raise Invalid_argument on an arity mismatch. *)

val match_publication : t -> Publication.t -> int list
(** Point publications stab each per-attribute index; box publications
    ask each index for the stored ranges {e containing} the box's
    range — both pure counting, both allocation-free up to the result
    list. @raise Invalid_argument on an arity mismatch. *)

val iter_matches : t -> Publication.t -> f:(int -> unit) -> unit
(** [iter_matches t pub ~f] calls [f id] once per matching
    subscription, in unspecified order, without building the result
    list — the stores' hot entry point. Not reentrant: the callback
    must not call back into [t]. *)

val inspections : t -> int
(** Monotone count of per-attribute index hits processed by match
    calls since creation — the matcher's unit of work, the counting
    analogue of the stores' scan counters. *)

val rebuild : t -> unit
(** Force-compact every per-attribute index now (e.g. before a latency
    measurement). Matching never compacts; mutations do, amortized. *)

(** Subscription store: active/covered sets, coverage policies,
    publication matching (Algorithm 5), unsubscription promotion (§5).

    A store keeps two sets: the {e active} set [S] of uncovered
    subscriptions — the only ones a broker propagates — and the
    {e covered} (passive) set [SS] of subscriptions subsumed by the
    active set, each remembering which active subscriptions cover it.
    The coverage policy decides where an arriving subscription lands:

    - {!No_coverage}: everything is active (flooding baseline);
    - {!Pairwise_policy}: covered iff a single active subscription
      covers it (Siena-style deterministic baseline);
    - {!Group_policy}: covered iff the engine's probabilistic group
      check says so (the paper's contribution) — with error ≤ δ a
      subscription can be wrongly classified as covered.

    Matching follows Algorithm 5: a publication is tested against the
    active set first; only when some active subscription matches can a
    covered one match, so the covered set is scanned only on a hit. *)

type id = int
(** Store-assigned subscription identifier, unique per store. *)

type policy =
  | No_coverage
  | Pairwise_policy
  | Group_policy of Engine.config

type placement =
  | Active
  | Covered of id list
      (** The ids of the active subscriptions recorded as coverers: the
          single coverer under pairwise, the MCS-reduced candidate set
          under group coverage. *)

type t
(** A mutable store. *)

val create :
  ?policy:policy -> ?pool:Domain_pool.t -> arity:int -> seed:int -> unit -> t
(** [create ~arity ~seed ()] builds an empty store for subscriptions
    with [arity] attributes. [seed] drives the engine's RSPC draws
    (group policy only): each group classification hands the engine a
    fresh {!Prng.split} of the store generator, so a given seed fixes
    every verdict regardless of how classifications are executed.
    [?pool] lends the store a {!Domain_pool} for the group-policy
    engine calls — {!add} parallelises the RSPC stage; the results are
    bit-identical to the pool-less store with the same seed. The store
    only borrows the pool: shutting it down remains the caller's job.
    Default policy: [Group_policy Engine.default_config]. *)

val policy : t -> policy
val arity : t -> int
val size : t -> int
(** Total live subscriptions (active + covered). *)

val active_count : t -> int
val covered_count : t -> int

val add : t -> Subscription.t -> id * placement
(** [add t s] inserts [s] and reports where it landed.
    @raise Invalid_argument on an arity mismatch. *)

val add_batch : t -> Subscription.t array -> (id * placement) array
(** [add_batch t subs] inserts the whole batch and returns each item's
    [(id, placement)]: [subs] fed one by one through {!add} in index
    order. (The earlier item-parallel snapshot-round path was retired
    as a measured regression — its rounds discarded every
    pre-classification after the first [Active] arrival. Item-parallel
    batching lives in {!Shard_store.add_batch}, where shard routing
    bounds the invalidation.)
    @raise Invalid_argument if any item's arity mismatches (checked
    up front, before any insertion). *)

val add_with_expiry : t -> Subscription.t -> expires_at:float -> id * placement
(** Like {!add} but the subscription carries a lease: it is removed by
    the first {!expire} call with [now >= expires_at]. §5 proposes
    expiration as the broker-friendly alternative to explicit
    unsubscription forwarding. @raise Invalid_argument if [expires_at]
    is NaN. *)

val expiry : t -> id -> float
(** [infinity] for unleased subscriptions. @raise Not_found. *)

val renew : t -> id -> expires_at:float -> unit
(** Replace a subscription's lease deadline — the refresh half of the
    lease protocol: a home broker re-announcing a subscription extends
    its life instead of reinstalling it. Renewing an id the store no
    longer holds (e.g. already reclaimed by {!expire}) is a silent
    no-op: a refresh that races a sweep must not fail, and a journaled
    renew must not resurrect an expired entry on replay.
    @raise Invalid_argument if [expires_at] is NaN. *)

val expire : t -> now:float -> id list * id list
(** [expire t ~now] removes every subscription whose lease has run out
    and re-checks coverage for the covered subscriptions that depended
    on the departed ones. Returns [(expired, promoted)]. Promotions
    never resurrect a subscription that is itself expired at [now]. *)

val remove : t -> id -> id list
(** [remove t id] deletes a subscription. When an {e active}
    subscription leaves, every covered subscription that recorded it as
    a coverer is re-checked against the remaining active set and
    promoted to active if no longer covered (§5's replacement rule).
    Returns the promoted ids. Removing a covered subscription promotes
    nothing. @raise Not_found on an unknown id. *)

val find : t -> id -> Subscription.t
(** @raise Not_found on an unknown id. *)

val is_active : t -> id -> bool
(** @raise Not_found on an unknown id. *)

val active : t -> (id * Subscription.t) list
(** Active subscriptions, ascending id. *)

val active_arrays : t -> id array * Subscription.t array
(** The active set as parallel arrays (ascending id), cached across
    calls and invalidated only when the active set itself changes — an
    arriving subscription classified as covered reuses the snapshot.
    Treat the arrays as read-only. *)

val active_packed : t -> Flat.t
(** The {!Flat} pack of {!active_arrays}, cached and invalidated on the
    same schedule; the store hands it to {!Engine.check} so repeated
    classifications against a stable active set never re-pack. *)

val covered : t -> (id * Subscription.t * id list) list
(** Covered subscriptions with their recorded coverers, ascending id. *)

val match_publication : t -> Publication.t -> id list
(** Algorithm 5 with its multi-level optimization: ids of all matching
    subscriptions (active and covered), ascending. Only the covered
    subscriptions recorded under a {e matched} coverer are tested — a
    point inside a (correctly) covered subscription necessarily lies
    inside one of its coverers. Under {!Group_policy} a {e wrongly}
    covered subscription can be missed (its recorded "coverers" do not
    actually cover it) — the δ-bounded loss mode Proposition 5
    analyzes. *)

val match_publication_exhaustive : t -> Publication.t -> id list
(** Ground truth: match against {e every} live subscription, bypassing
    the two-level structure; used to quantify losses. *)

val check_publication : t -> rng:Prng.t -> Publication.t -> Engine.report
(** The general subsumption question against the {e active} set: is
    the publication's box covered by the union of active
    subscriptions? Read-only — the caller supplies [rng] (queries must
    never draw from the store's own generator, or interleaving them
    with arrivals would perturb later placements). Runs under the
    group-policy config when the store has one,
    {!Engine.default_config} otherwise. *)

type stats = {
  added : int;
  dropped_covered : int;  (** Arrivals classified as covered. *)
  removed : int;
  promoted : int;
  active_scans : int;
      (** Subscriptions tested one-by-one ([Publication.matches])
          against the active set. Zero on the indexed match path — the
          counting index replaces the scan; the index's work is
          {!field-index_hits}. *)
  covered_scans : int;  (** Subscriptions touched in covered-set scans. *)
  index_hits : int;
      (** Per-attribute counting-index hits processed by
          {!match_publication} — the indexed path's unit of work
          ({!Counting_matcher.inspections}). *)
}

val stats : t -> stats
(** Monotone counters since creation. *)

val validate : t -> bool
(** Structural invariants, for tests: coverer references are live and
    active, the multi-level child index is the exact inverse of the
    covered-by relation, and (pairwise policy) every recorded coverer
    really covers its child. *)

(** {1 Durability: effect journal and crash recovery}

    The store can journal every completed mutation as an {!op} — an
    {e effect} record carrying the classified placements, not the
    inputs — so a write-ahead log replays without re-running the
    probabilistic engine. Replay is deterministic, and the generator
    stream is kept aligned by consuming exactly the {!Prng.split}
    draws the live classifications made (one per group-policy
    classification; counted in {!splits_consumed}). *)

type op =
  | Op_add of {
      id : id;
      sub : Subscription.t;
      placement : placement;
      expires_at : float;
    }  (** One {!add}/{!add_batch} item or {!add_with_expiry}. *)
  | Op_remove of { id : id; reclassified : (id * placement) list }
      (** One {!remove}; [reclassified] lists every orphan re-checked
          after an active departure, with its new placement. *)
  | Op_renew of { id : id; expires_at : float }
      (** One effective {!renew} (no-op renews are not journaled). *)
  | Op_expire of {
      now : float;
      expired : id list;
      reclassified : (id * placement) list;
    }  (** One {!expire} that reclaimed at least one lease. *)

val set_journal : t -> (op -> unit) option -> unit
(** Install (or clear) the journal callback, invoked after each
    completed mutation. Replay via {!apply_op}/{!recover} never
    re-journals. *)

val splits_consumed : t -> int
(** Number of {!Prng.split} draws classifications have consumed so
    far — the generator fast-forward distance recovery needs. *)

val apply_op : t -> op -> unit
(** Apply one journaled effect without classification: placements are
    taken from the record and the implied split draws are consumed, so
    a replayed store tracks the live store's state {e and} generator.
    Unknown ids in removals/renewals/expiries are ignored (replay of a
    prefix must never fail). @raise Invalid_argument if an [Op_add]
    id is not the store's next id or its arity mismatches — a log that
    was not produced by this store's journal. *)

type image = {
  i_next_id : id;
  i_splits : int;
  i_entries : (id * Subscription.t * placement * float) list;
      (** Live entries ascending by id: [(id, sub, placement,
          expires_at)]. *)
}
(** A snapshot of everything {!recover} needs: replaying an image then
    a journal suffix is equivalent to replaying the full journal. *)

val image : t -> image

val empty_image : image
(** The image of a freshly created store: no entries, no consumed
    splits, next id 0. *)

val recover :
  ?policy:policy -> ?pool:Domain_pool.t -> arity:int -> seed:int ->
  ?image:image -> op list -> t
(** [recover ~arity ~seed ops] rebuilds a store from a snapshot image
    (default: empty) plus a journaled op suffix. [policy], [arity] and
    [seed] must be those of the original store; the result then
    satisfies [equal_state original (recover ...)] — same entries,
    placements, coverer links, active arrays, {!Flat} pack, next id
    and generator position. @raise Invalid_argument on a malformed
    image or an [Op_add] inconsistent with the rebuilt state. *)

val equal_state : t -> t -> bool
(** Logical-state equality: policy, arity, next id, consumed splits,
    the full entry table (ids, subscriptions, placements, leases), the
    active id array and the packed {!Flat} planes. Read-path counters
    ([stats]) are excluded — they are not part of durable state. *)

(** Flat, cache-friendly subscription kernels (structure-of-arrays).

    The boxed model ([Subscription.t array] of [Interval.t] records)
    costs two pointer indirections per bound on the RSPC hot path. A
    {!t} packs an entire subscription set into a single [int array] in
    SoA layout — the [lo] plane first, then the [hi] plane, each
    [k × m] row-major — so the inner loop of Algorithm 1 is a linear
    walk over machine integers. Combined with {!random_point_into}
    filling a preallocated point buffer (and {!Prng}'s unboxed state),
    one RSPC trial performs {e zero} minor-heap allocation; the bench
    asserts this.

    The candidate-pruning helpers implement the soundness argument of
    DESIGN "Data layout & hot path": a subscription that does not
    intersect the tested box [s] contains no point of [s], so dropping
    it can change neither the group-coverage answer nor any witness. *)

type t
(** An immutable packed subscription set. Values are safe to share
    read-only across domains. *)

type box
(** A packed tested subscription [s]: one [lo] and one [hi] array of
    length [m]. *)

val pack : m:int -> Subscription.t array -> t
(** [pack ~m subs] packs the set ([k = Array.length subs] rows of [m]
    attributes) in O(k·m). @raise Invalid_argument if [m < 1] or some
    subscription has a different arity. *)

val box_of_sub : Subscription.t -> box

val k : t -> int
(** Number of packed subscriptions. *)

val m : t -> int
(** Number of attributes per subscription. *)

val box_arity : box -> int

val lo : t -> row:int -> attr:int -> int
val hi : t -> row:int -> attr:int -> int

val row_sub : t -> int -> Subscription.t
(** [row_sub t i] re-boxes row [i] (tests, error reporting). *)

val gather : t -> int array -> t
(** [gather t rows] packs the selected rows, preserving order — the
    pruned or MCS-reduced candidate set without re-reading any boxed
    subscription. @raise Invalid_argument on an out-of-range row. *)

val random_point_into : rng:Prng.t -> box -> int array -> unit
(** [random_point_into ~rng box p] overwrites [p] with a uniform point
    of [box] — one {!Prng.int_in} draw per attribute, ascending, so the
    stream matches {!Rspc.random_point} exactly. Allocation-free.
    @raise Invalid_argument if [Array.length p <> box_arity box]. *)

val random_points_into : rng:Prng.t -> box -> int array -> n:int -> unit
(** [random_points_into ~rng box buf ~n] overwrites the first [n × m]
    slots of [buf] with [n] uniform points of [box], point [t] at
    offset [t × m]. The Prng stream consumed is bit-identical to [n]
    successive {!random_point_into} calls — the block-parallel RSPC
    runner depends on this to reproduce the sequential trial stream.
    Allocation-free. @raise Invalid_argument if [n < 0] or [buf] is
    shorter than [n × m]. *)

val covers_row : t -> row:int -> int array -> bool
(** [covers_row t ~row p] tests whether packed row [row] contains [p];
    agrees with [Subscription.covers_point] on the boxed original. *)

val escapes : t -> int array -> bool
(** [escapes t p] is true when [p] lies in none of the packed rows —
    the flat equivalent of {!Rspc.escapes}, allocation-free. *)

val escapes_at : t -> int array -> pos:int -> bool
(** [escapes_at t buf ~pos] is {!escapes} on the point stored at slot
    [pos] of a {!random_points_into} buffer (offset [pos × m]), without
    copying it out. Allocation-free; safe to call concurrently from
    several domains on a shared read-only buffer.
    @raise Invalid_argument if the slot exceeds the buffer. *)

val iter_superset_rows : t -> box -> f:(int -> unit) -> unit
(** [iter_superset_rows t box ~f] calls [f row] for every packed row
    whose rectangle contains [box] (i.e. [Subscription.covers_sub row
    box]) — the counting matcher's box-publication scan. *)

val default_crossover : int
(** Default [k] above which {!intersecting_rows} switches from the
    plain scan to the per-attribute {!Interval_index} path. *)

val intersecting_rows : ?crossover:int -> t -> box -> int array
(** [intersecting_rows t box] lists (ascending) the rows whose
    rectangle intersects [box]. Below [crossover] rows a plain O(k·m)
    early-exit scan wins on constants; above it the per-attribute
    stabbing path is used. Both paths return identical results.
    @raise Invalid_argument on an arity mismatch. *)

(** Recorded workload traces: generate, save, load, replay.

    A trace is a time-ordered script of client operations — the
    subscribe/publish pattern of §2 — that can be saved to a text file
    and replayed against any {!Probsub_broker.Network.t}, making
    cross-policy comparisons run the {e exact same} workload and
    letting experiments be archived with their inputs.

    File format (one event per line, [#] comments):
    {v
      SUB   <time> <broker> <client> <lo>:<hi> <lo>:<hi> ...
      UNSUB <time> <broker> <ref>     # ref = 0-based index of the SUB line
      PUB   <time> <broker> <v> <v> ...
    v} *)

open Probsub_core

type event =
  | Subscribe of {
      time : float;
      broker : int;
      client : int;
      sub : Subscription.t;
    }
  | Unsubscribe of { time : float; broker : int; sub_ref : int }
      (** [sub_ref] indexes the trace's Subscribe events, in order. *)
  | Publish of { time : float; broker : int; pub : Publication.t }

type t = event list
(** Events in non-decreasing time order (validated on load/replay). *)

type params = {
  duration : float;  (** Simulated seconds. *)
  subscribe_rate : float;  (** Poisson arrivals per second. *)
  unsubscribe_rate : float;
      (** Per live subscription; 0 disables churn. *)
  publish_rate : float;
  brokers : int;  (** Operations spread uniformly over brokers. *)
  m : int;  (** Attributes (comparison-stream workload). *)
  match_bias : float;
      (** Fraction of publications drawn inside a live subscription
          (the rest are uniform over the domain). *)
}

val default_params : params
(** 100 s, 2 sub/s, 0.01 unsub/s each, 10 pub/s, 8 brokers, m = 5,
    bias 0.5. *)

val generate : ?params:params -> Prng.t -> t
(** An open workload over the §6.4 comparison subscription
    distribution. Deterministic per generator state. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Parse the file format; validates ordering, arity consistency and
    [sub_ref] targets. *)

val save : t -> path:string -> unit
val load : path:string -> (t, string) result

val replay : Network.t -> t -> unit
(** Run the trace to completion: simulated time is advanced to each
    event's timestamp ({!Network.run_until}, so lease refreshes, expiry
    sweeps and scheduled crash windows fire on time), the event is
    injected, and after the last event the network is drained to
    quiescence. @raise Invalid_argument on arity mismatch with the
    network, an out-of-range broker, or a dangling [sub_ref]. *)

val stats : t -> int * int * int
(** (subscribes, unsubscribes, publishes). *)

(** Delivery audit oracle.

    Chaos tests need an answer to "did the network recover?" that does
    not trust the network's own bookkeeping. The oracle snapshots
    ground truth at publish time — {!Network.expected_recipients},
    computed from live client subscriptions alone, independent of
    routing state — and later compares it against the notifications the
    simulation actually produced. After a fault era plus recovery
    margin, a healthy network must deliver every probe exactly once to
    exactly the expected recipients. *)

type t

type report = {
  publications : int;  (** Audited publications. *)
  expected : int;  (** Deliveries ground truth demands. *)
  delivered : int;  (** Deliveries observed (duplicates included). *)
  missed : (int * (Topology.broker * int * int)) list;
      (** [(pub_id, (broker, client, sub_key))] owed but never
          delivered. *)
  spurious : (int * (Topology.broker * int * int)) list;
      (** Delivered to a recipient ground truth does not name. *)
  duplicates : (int * (Topology.broker * int * int)) list;
      (** Extra copies beyond the first delivery, one entry each. *)
}

val create : unit -> t

val expect_recipients :
  t -> pub_id:int -> (Topology.broker * int * int) list -> unit
(** Transport-agnostic registration: snapshot an explicit ground-truth
    recipient list [(broker, client, sub_key)] for [pub_id] (sorted and
    deduped here). The real-process harness computes the list from its
    own client table and audits socket traffic with the same oracle the
    simulator uses. @raise Invalid_argument if [pub_id] was already
    registered. *)

val report_delivered : t -> (int * (Topology.broker * int * int)) list -> report
(** Transport-agnostic comparison: [(pub_id, (broker, client,
    sub_key))] deliveries observed by any transport, duplicates
    included, order irrelevant. Deliveries for unregistered
    publications are ignored. *)

val expect : t -> Network.t -> pub_id:int -> Probsub_core.Publication.t -> unit
(** Register a publication for auditing, snapshotting its expected
    recipients {e now} — call at publish time, before running the
    simulation, so ground truth reflects the subscriptions live at
    publish. @raise Invalid_argument if [pub_id] was already
    registered. *)

val report : t -> Network.t -> report
(** Compare registered expectations against
    [Network.notifications net]. Notifications for unregistered
    publications are ignored. *)

val is_clean : report -> bool
(** No missed, spurious, or duplicated deliveries. *)

val pp : Format.formatter -> report -> unit

(** Transport-agnostic reliable-channel state: the at-least-once sender
    (retransmission buffer with exponential backoff and a retry cap)
    and the exactly-once receiver (bounded dedup window) that PR 2
    proved out inside the simulator, factored so the real socket
    transport ({!Probsub_server}) runs the {e same} loss/duplicate/
    reorder machinery rather than a reimplementation.

    The module owns no clock and no wire: the caller allocates sequence
    numbers, delivers bytes, and arms timers (of whatever type ['timer]
    its event loop uses — a simulator queue handle, a deadline float).
    On an ack, {!ack} returns the timer to cancel; when a timer fires,
    {!on_timeout} decides between giving up (the lease/refresh layer
    repairs whatever the message would have installed) and
    retransmitting with a doubled timeout.

    Invariant (property-tested in [test_reliable_link.ml]): over a link
    that drops, duplicates and reorders, every tracked item is either
    acked or given up after at most [max_retries] retransmissions, and
    a receiver admits each sequence number exactly once while its
    window spans the reorder horizon. *)

type config = { rto : float; max_retries : int }
(** Initial retransmission timeout (doubles on every retry) and how
    many retransmissions are attempted before giving up. *)

val default_config : config
(** [{ rto = 4.0; max_retries = 6 }] — the simulator's defaults. *)

(** {1 Sender} *)

type ('item, 'timer) sender
(** Unacked ['item]s keyed by sequence number, each with a caller-owned
    ['timer]. *)

val sender : config -> ('item, 'timer) sender
(** @raise Invalid_argument if [rto <= 0] or [max_retries < 0]. *)

val config : ('item, 'timer) sender -> config
val in_flight : ('item, 'timer) sender -> int
val tracked : ('item, 'timer) sender -> seq:int -> bool

val track :
  ('item, 'timer) sender -> seq:int -> item:'item -> timer:'timer -> unit
(** Start tracking a freshly sent item. @raise Invalid_argument if
    [seq] is already in flight. *)

val ack : ('item, 'timer) sender -> seq:int -> 'timer option
(** Ack arrival: stop tracking [seq] and return the timer the caller
    must cancel; [None] for a late duplicate ack. *)

type 'item timeout_decision =
  | Not_tracked  (** Stale timer — the item was acked meanwhile. *)
  | Give_up
      (** Retry budget exhausted; the entry has been dropped. Recovery
          is the lease layer's job now. *)
  | Retransmit of { item : 'item; rto : float }
      (** Send [item] again and re-arm a timer [rto] (already doubled)
          from now, registering it with {!set_timer}. *)

val on_timeout : ('item, 'timer) sender -> seq:int -> 'item timeout_decision

val set_timer : ('item, 'timer) sender -> seq:int -> 'timer -> unit
(** Replace the timer after a retransmission. @raise Invalid_argument
    if [seq] is not in flight. *)

val drop_where :
  ('item, 'timer) sender -> ('item -> bool) -> (int * 'timer) list
(** Remove every in-flight entry matching the predicate (a crashed
    source, a torn-down connection), returning the dropped [(seq,
    timer)] pairs ascending by sequence number so the caller can cancel
    the timers. *)

val unacked : ('item, 'timer) sender -> (int * 'item) list
(** Everything still in flight, ascending by sequence number — what a
    reconnecting session retransmits after resume. *)

(** {1 Receiver} *)

type receiver
(** Per-peer (or per-session) duplicate suppression over sequence
    numbers. *)

val receiver : ?capacity:int -> unit -> receiver
(** [capacity] (default 1024) bounds the window, as in
    {!Dedup_window}. *)

val admit : receiver -> seq:int -> [ `Fresh | `Duplicate ]
(** [`Fresh] exactly once per sequence number within the window;
    remembers the number as a side effect. *)

val reset_receiver : receiver -> unit
(** Forget everything — a new session epoch starts its numbering
    afresh. *)

type config = { rto : float; max_retries : int }

let default_config = { rto = 4.0; max_retries = 6 }

let check_config c =
  if not (c.rto > 0.0) then
    invalid_arg "Reliable_link: rto must be positive";
  if c.max_retries < 0 then
    invalid_arg "Reliable_link: max_retries must be non-negative"

type ('item, 'timer) entry = {
  item : 'item;
  mutable retries : int;
  mutable rto : float;
  mutable timer : 'timer;
}

type ('item, 'timer) sender = {
  config : config;
  pending : (int, ('item, 'timer) entry) Hashtbl.t;
}

let sender config =
  check_config config;
  { config; pending = Hashtbl.create 64 }

let config s = s.config
let in_flight s = Hashtbl.length s.pending
let tracked s ~seq = Hashtbl.mem s.pending seq

let track s ~seq ~item ~timer =
  if Hashtbl.mem s.pending seq then
    invalid_arg "Reliable_link.track: sequence number already in flight";
  Hashtbl.replace s.pending seq
    { item; retries = 0; rto = s.config.rto; timer }

let ack s ~seq =
  match Hashtbl.find_opt s.pending seq with
  | None -> None (* late duplicate ack *)
  | Some e ->
      Hashtbl.remove s.pending seq;
      Some e.timer

type 'item timeout_decision =
  | Not_tracked
  | Give_up
  | Retransmit of { item : 'item; rto : float }

let on_timeout s ~seq =
  match Hashtbl.find_opt s.pending seq with
  | None -> Not_tracked
  | Some e ->
      if e.retries >= s.config.max_retries then begin
        (* Retry budget exhausted: give up; lease refresh (or expiry)
           repairs whatever this message would have installed (or
           removed). *)
        Hashtbl.remove s.pending seq;
        Give_up
      end
      else begin
        e.retries <- e.retries + 1;
        e.rto <- e.rto *. 2.0;
        Retransmit { item = e.item; rto = e.rto }
      end

let set_timer s ~seq timer =
  match Hashtbl.find_opt s.pending seq with
  | None -> invalid_arg "Reliable_link.set_timer: unknown sequence number"
  | Some e -> e.timer <- timer

let drop_where s pred =
  let victims =
    (Hashtbl.fold
       (fun seq e acc -> if pred e.item then (seq, e.timer) :: acc else acc)
       s.pending []
    [@problint.allow
      determinism "order-insensitive: the result is sorted on the next line"])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter (fun (seq, _) -> Hashtbl.remove s.pending seq) victims;
  victims

let unacked s =
  (Hashtbl.fold (fun seq e acc -> (seq, e.item) :: acc) s.pending []
  [@problint.allow
    determinism "order-insensitive: the result is sorted on the next line"])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type receiver = { window : Dedup_window.t }

let receiver ?(capacity = 1024) () =
  { window = Dedup_window.create ~capacity }

let admit r ~seq =
  if Dedup_window.mem r.window seq then `Duplicate
  else begin
    Dedup_window.add r.window seq;
    `Fresh
  end

let reset_receiver r = Dedup_window.clear r.window

(** Capacity-bounded duplicate-suppression window: a ring of the most
    recently seen integer ids backed by a hashtable for O(1) membership.
    Once [capacity] ids are held, remembering a fresh id forgets the
    oldest one — so memory stays constant over arbitrarily long
    simulations, at the cost that an id older than the last [capacity]
    distinct arrivals is no longer recognized as a duplicate. Used for
    publication dedup in brokers and per-link sequence dedup in the
    reliable control channel. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int
val size : t -> int
(** Ids currently remembered; never exceeds {!capacity}. *)

val mem : t -> int -> bool
val add : t -> int -> unit
(** Remember an id, evicting the oldest remembered id when full.
    Adding an id already in the window is a no-op. *)

val clear : t -> unit
(** Forget everything (broker restart). *)

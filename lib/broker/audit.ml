type expectation = {
  pub_id : int;
  recipients : (Topology.broker * int * int) list; (* sorted, deduped *)
}

type t = { mutable expectations : expectation list (* newest first *) }

type report = {
  publications : int;
  expected : int;
  delivered : int;
  missed : (int * (Topology.broker * int * int)) list;
  spurious : (int * (Topology.broker * int * int)) list;
  duplicates : (int * (Topology.broker * int * int)) list;
}

let create () = { expectations = [] }

let expect_recipients t ~pub_id recipients =
  if List.exists (fun e -> e.pub_id = pub_id) t.expectations then
    invalid_arg "Audit.expect: publication already registered";
  t.expectations <-
    { pub_id; recipients = List.sort_uniq compare recipients }
    :: t.expectations

let expect t net ~pub_id pub =
  expect_recipients t ~pub_id (Network.expected_recipients net pub)

(* Multiset difference and duplicate extraction over sorted lists. *)
let rec diff xs ys =
  match (xs, ys) with
  | [], _ -> []
  | xs, [] -> xs
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then diff xs' ys'
      else if c < 0 then x :: diff xs' ys
      else diff xs ys'

let rec dups = function
  | x :: (y :: _ as rest) -> if x = y then x :: dups rest else dups rest
  | [ _ ] | [] -> []

let report_delivered t deliveries =
  let actual_by_pub = Hashtbl.create 64 in
  List.iter
    (fun (pub_id, recipient) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt actual_by_pub pub_id)
      in
      Hashtbl.replace actual_by_pub pub_id (recipient :: prev))
    deliveries;
  let r =
    List.fold_left
      (fun acc e ->
        let actual =
          List.sort compare
            (Option.value ~default:[] (Hashtbl.find_opt actual_by_pub e.pub_id))
        in
        let once = List.sort_uniq compare actual in
        {
          acc with
          expected = acc.expected + List.length e.recipients;
          delivered = acc.delivered + List.length actual;
          missed =
            List.map (fun d -> (e.pub_id, d)) (diff e.recipients once)
            @ acc.missed;
          spurious =
            List.map (fun d -> (e.pub_id, d)) (diff once e.recipients)
            @ acc.spurious;
          duplicates =
            List.map (fun d -> (e.pub_id, d)) (dups actual) @ acc.duplicates;
        })
      {
        publications = List.length t.expectations;
        expected = 0;
        delivered = 0;
        missed = [];
        spurious = [];
        duplicates = [];
      }
      (List.rev t.expectations)
  in
  {
    r with
    missed = List.sort compare r.missed;
    spurious = List.sort compare r.spurious;
    duplicates = List.sort compare r.duplicates;
  }

let report t net =
  report_delivered t
    (List.map
       (fun (n : Network.notification) ->
         (n.pub_id, (n.broker, n.client, n.sub_key)))
       (Network.notifications net))

let is_clean r = r.missed = [] && r.spurious = [] && r.duplicates = []

let pp ppf r =
  let pp_entry ppf (pub_id, (b, c, k)) =
    Format.fprintf ppf "pub %d -> broker %d client %d (sub #%d)" pub_id b c k
  in
  let pp_list name ppf = function
    | [] -> ()
    | l ->
        Format.fprintf ppf "@,%s:@,  @[<v>%a@]" name
          (Format.pp_print_list pp_entry)
          l
  in
  Format.fprintf ppf
    "@[<v>audited publications: %d@,expected deliveries:  %d@,\
     actual deliveries:    %d%a%a%a@]"
    r.publications r.expected r.delivered (pp_list "missed") r.missed
    (pp_list "spurious") r.spurious (pp_list "duplicated") r.duplicates

(** Messages exchanged in the broker network. *)

type origin =
  | Client of int  (** A locally connected client, by client id. *)
  | Publisher  (** A local publisher injecting a publication. *)
  | Link of Topology.broker  (** A neighbouring broker. *)

type payload =
  | Subscribe of { key : int; sub : Probsub_core.Subscription.t; epoch : int }
      (** [key] identifies the subscription network-wide so duplicate
          arrivals over different paths can be suppressed. [epoch]
          counts the home broker's lease refreshes: epoch 0 is the
          initial installation, and a broker forwards a given epoch of a
          known key at most once — refresh waves renew leases along the
          dissemination tree without circulating forever. *)
  | Unsubscribe of { key : int }
  | Advertise of { key : int; adv : Probsub_core.Subscription.t }
      (** A publisher's declaration of the content box it will publish
          into; floods the network so subscriptions can be routed
          toward matching publishers only (Siena-style, §2's "brokers
          that are potential publishers"). *)
  | Unadvertise of { key : int }
  | Publish of { id : int; pub : Probsub_core.Publication.t }
      (** [id] identifies the publication network-wide (duplicate
          suppression on cyclic topologies). *)
  | Ack of { seq : int }
      (** Link-level acknowledgement of the control message that
          crossed this link with sequence number [seq]. Handled by the
          network's reliable-channel layer; brokers never see it. *)

val origin_equal : origin -> origin -> bool

val is_control : payload -> bool
(** Control-plane messages travel on the acked, retransmitted channel;
    publications and acks themselves are best-effort. *)

val pp_origin : Format.formatter -> origin -> unit
val pp_payload : Format.formatter -> payload -> unit

type 'a cell = { time : float; seq : int; payload : 'a }

type handle = int

type 'a t = {
  mutable heap : 'a cell array;
  mutable len : int;
  mutable next_seq : int;
  (* Cancellation is lazy: a cancelled cell stays in the heap (keyed by
     its unique [seq]) until it reaches the top, where it is discarded.
     [cancelable] holds the seqs of live cancelable cells, [cancelled]
     the seqs waiting to be skimmed off. *)
  cancelable : (int, unit) Hashtbl.t;
  cancelled : (int, unit) Hashtbl.t;
}

let create () =
  {
    heap = [||];
    len = 0;
    next_seq = 0;
    cancelable = Hashtbl.create 16;
    cancelled = Hashtbl.create 16;
  }

let cell_before a b =
  a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  if q.len >= cap then begin
    let dummy = q.heap.(0) in
    let fresh = Array.make (max 16 (2 * cap)) dummy in
    Array.blit q.heap 0 fresh 0 q.len;
    q.heap <- fresh
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && cell_before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.len && cell_before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push_cell q ~time payload =
  if Float.is_nan time || time < 0.0 then
    invalid_arg "Event_queue.push: bad time";
  let cell = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.len = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 cell;
  grow q;
  q.heap.(q.len) <- cell;
  q.len <- q.len + 1;
  sift_up q (q.len - 1);
  cell.seq

let push q ~time payload = ignore (push_cell q ~time payload)

let push_cancelable q ~time payload =
  let seq = push_cell q ~time payload in
  Hashtbl.replace q.cancelable seq ();
  seq

let cancel q h =
  if Hashtbl.mem q.cancelable h then begin
    Hashtbl.remove q.cancelable h;
    Hashtbl.replace q.cancelled h ();
    true
  end
  else false

let pop_top q =
  let top = q.heap.(0) in
  q.len <- q.len - 1;
  if q.len > 0 then begin
    q.heap.(0) <- q.heap.(q.len);
    sift_down q 0
  end;
  top

(* Discard cancelled cells sitting at the top of the heap. *)
let rec skim q =
  if q.len > 0 && Hashtbl.mem q.cancelled q.heap.(0).seq then begin
    let top = pop_top q in
    Hashtbl.remove q.cancelled top.seq;
    skim q
  end

let pop q =
  skim q;
  if q.len = 0 then None
  else begin
    let top = pop_top q in
    Hashtbl.remove q.cancelable top.seq;
    Some (top.time, top.payload)
  end

let peek_time q =
  skim q;
  if q.len = 0 then None else Some q.heap.(0).time

let size q = q.len - Hashtbl.length q.cancelled
let is_empty q = size q = 0

let drain q ~f =
  let rec loop () =
    match pop q with
    | None -> ()
    | Some (time, payload) ->
        f ~time payload;
        loop ()
  in
  loop ()

type t = {
  capacity : int;
  ring : int array; (* ids in arrival order, oldest at [pos] once full *)
  members : (int, unit) Hashtbl.t;
  mutable pos : int;
  mutable count : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Dedup_window.create: capacity < 1";
  {
    capacity;
    ring = Array.make capacity 0;
    members = Hashtbl.create (min capacity 1024);
    pos = 0;
    count = 0;
  }

let capacity t = t.capacity
let size t = t.count
let mem t id = Hashtbl.mem t.members id

let add t id =
  if not (mem t id) then begin
    if t.count = t.capacity then begin
      Hashtbl.remove t.members t.ring.(t.pos);
      t.count <- t.count - 1
    end;
    t.ring.(t.pos) <- id;
    t.pos <- (t.pos + 1) mod t.capacity;
    t.count <- t.count + 1;
    Hashtbl.replace t.members id ()
  end

let clear t =
  Hashtbl.reset t.members;
  t.pos <- 0;
  t.count <- 0

open Probsub_core

type notification = {
  time : float;
  broker : Topology.broker;
  client : int;
  sub_key : int;
  pub_id : int;
}

type recovery = {
  lease_ttl : float;
  refresh_interval : float;
  rto : float;
  max_retries : int;
}

let default_recovery =
  { lease_ttl = 30.0; refresh_interval = 10.0; rto = 4.0; max_retries = 6 }

(* The simulator's event algebra, split over two queues. Deliver and
   Retransmit are "real" work and live in [real_q]; [run] drains that
   queue alone, so it terminates (retransmissions are capped and acks
   settle). Refresh, Sweep, Crash and Restart are scheduled maintenance
   — periodic or clock-driven — parked in [maint_q]; only [run_until]
   advances through them, merging the two queues in time order. Without
   the split, a refresh wave whose ack/retransmit tail outlasts the
   refresh interval would re-arm itself forever and a draining run
   would never go quiescent. *)
type event =
  | Deliver of {
      dst : Topology.broker;
      origin : Message.origin;
      payload : Message.payload;
      seq : int option; (* link sequence number on the acked channel *)
    }
  | Retransmit of int (* pending link seq whose ack timed out *)
  | Refresh of int (* subscription key due for a lease refresh *)
  | Sweep of Topology.broker (* periodic lease expiry at a broker *)
  | Crash of Topology.broker
  | Restart of Topology.broker

(* What one unacked link transmission must remember to be resendable;
   retry counts, backoff and timers live in [Reliable_link]. *)
type link_item = {
  li_src : Topology.broker;
  li_dst : Topology.broker;
  li_payload : Message.payload;
}

type t = {
  topology : Topology.t;
  brokers : Broker_node.t array;
  real_q : event Event_queue.t;
  maint_q : event Event_queue.t;
  metrics : Metrics.t;
  link_latency : float;
  fault_plan : Fault_plan.t;
  recovery : recovery option;
  down : bool array;
  mutable clock : float;
  mutable next_sub_key : int;
  mutable next_adv_key : int;
  mutable next_pub_id : int;
  mutable notifications : notification list; (* newest first *)
  (* key -> (broker, client, sub); removed on unsubscribe. *)
  client_subs : (int, Topology.broker * int * Subscription.t) Hashtbl.t;
  mutable next_link_seq : int;
  link_sender : (link_item, Event_queue.handle) Reliable_link.sender;
  (* Receiver-side (src, dst) link dedup of the acked channel. *)
  link_seen : (Topology.broker * Topology.broker, Reliable_link.receiver) Hashtbl.t;
  refresh_timers : (int, Event_queue.handle) Hashtbl.t;
  next_epoch : (int, int) Hashtbl.t;
}

let push_real t ~time ev = Event_queue.push t.real_q ~time ev
let push_maintenance t ~time ev = Event_queue.push t.maint_q ~time ev

let push_retransmit t ~time seq =
  Event_queue.push_cancelable t.real_q ~time (Retransmit seq)

let cancel_retransmit t h = ignore (Event_queue.cancel t.real_q h)

let create ?(policy = Subscription_store.Pairwise_policy) ?(link_latency = 1.0)
    ?(use_advertisements = false) ?(fault_plan = Fault_plan.zero) ?recovery
    ?dedup_capacity ?devices ~topology ~arity ~seed () =
  if not (link_latency > 0.0) then
    invalid_arg "Network.create: latency must be positive";
  (match devices with
  | Some d when Array.length d <> Topology.size topology ->
      invalid_arg "Network.create: one device per broker required"
  | Some _ | None -> ());
  (match recovery with
  | Some r ->
      if
        not
          (r.lease_ttl > 0.0
          && r.refresh_interval > 0.0
          && r.refresh_interval < r.lease_ttl
          && r.rto > 0.0 && r.max_retries >= 0)
      then invalid_arg "Network.create: bad recovery parameters"
  | None -> ());
  let lease_ttl = Option.map (fun r -> r.lease_ttl) recovery in
  let brokers =
    Array.init (Topology.size topology) (fun id ->
        Broker_node.create ~use_advertisements ?lease_ttl ?dedup_capacity
          ?device:(Option.map (fun d -> d.(id)) devices)
          ~id
          ~neighbors:(Topology.neighbors topology id)
          ~policy ~arity ~seed ())
  in
  let t =
    {
      topology;
      brokers;
      real_q = Event_queue.create ();
      maint_q = Event_queue.create ();
      metrics = Metrics.create ();
      link_latency;
      fault_plan;
      recovery;
      down = Array.make (Topology.size topology) false;
      clock = 0.0;
      next_sub_key = 0;
      next_adv_key = 0;
      next_pub_id = 0;
      notifications = [];
      client_subs = Hashtbl.create 64;
      next_link_seq = 0;
      link_sender =
        Reliable_link.sender
          (match recovery with
          | Some r ->
              { Reliable_link.rto = r.rto; max_retries = r.max_retries }
          | None -> Reliable_link.default_config);
      link_seen = Hashtbl.create 16;
      refresh_timers = Hashtbl.create 64;
      next_epoch = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (b, start, stop) ->
      if b >= Topology.size topology then
        invalid_arg "Network.create: crash window names an unknown broker";
      push_maintenance t ~time:start (Crash b);
      push_maintenance t ~time:stop (Restart b))
    (Fault_plan.crash_windows fault_plan);
  (match recovery with
  | Some r ->
      Array.iteri
        (fun b _ -> push_maintenance t ~time:r.refresh_interval (Sweep b))
        brokers
  | None -> ());
  t

let topology t = t.topology
let now t = t.clock
let metrics t = t.metrics

let broker t b =
  if b < 0 || b >= Array.length t.brokers then
    invalid_arg "Network.broker: unknown broker";
  t.brokers.(b)

let broker_down t b =
  ignore (broker t b);
  t.down.(b)

let count_link_message t payload =
  match payload with
  | Message.Subscribe _ ->
      t.metrics.Metrics.subscribe_msgs <- t.metrics.Metrics.subscribe_msgs + 1
  | Message.Unsubscribe _ ->
      t.metrics.Metrics.unsubscribe_msgs <-
        t.metrics.Metrics.unsubscribe_msgs + 1
  | Message.Advertise _ | Message.Unadvertise _ ->
      t.metrics.Metrics.advertise_msgs <- t.metrics.Metrics.advertise_msgs + 1
  | Message.Publish _ ->
      t.metrics.Metrics.publish_msgs <- t.metrics.Metrics.publish_msgs + 1
  | Message.Ack _ ->
      t.metrics.Metrics.ack_msgs <- t.metrics.Metrics.ack_msgs + 1

(* One fault-plan-mediated traversal of [src -> dst]: each returned
   offset is a delivered copy; none means the message is lost. *)
let transmit_link t ~time ~src ~dst ~payload ~seq =
  match Fault_plan.transmit t.fault_plan ~src ~dst ~now:time with
  | [] -> t.metrics.Metrics.dropped_msgs <- t.metrics.Metrics.dropped_msgs + 1
  | offsets ->
      List.iteri
        (fun i offset ->
          if i > 0 then
            t.metrics.Metrics.duplicated_msgs <-
              t.metrics.Metrics.duplicated_msgs + 1;
          push_real t
            ~time:(time +. t.link_latency +. offset)
            (Deliver { dst; origin = Message.Link src; payload; seq }))
        offsets

(* Send one link message. Control messages on a recovery-enabled
   network get a sequence number, an entry in the retransmission
   buffer, and an ack timeout. *)
let send_link t ~time ~src ~dst payload =
  count_link_message t payload;
  let seq =
    match t.recovery with
    | Some r when Message.is_control payload ->
        let s = t.next_link_seq in
        t.next_link_seq <- s + 1;
        let timer = push_retransmit t ~time:(time +. r.rto) s in
        Reliable_link.track t.link_sender ~seq:s
          ~item:{ li_src = src; li_dst = dst; li_payload = payload }
          ~timer;
        Some s
    | Some _ | None -> None
  in
  transmit_link t ~time ~src ~dst ~payload ~seq

let apply_actions t ~time ~at actions =
  List.iter
    (fun action ->
      match action with
      | Broker_node.Forward { to_; payload } ->
          send_link t ~time ~src:at ~dst:to_ payload
      | Broker_node.Notify { client; key; pub_id } ->
          t.metrics.Metrics.notifications <-
            t.metrics.Metrics.notifications + 1;
          t.notifications <-
            { time; broker = at; client; sub_key = key; pub_id }
            :: t.notifications)
    actions

(* Track coverage suppressions: a Subscribe processed at a broker with
   f out-neighbours that emits s < f subscribe forwards withheld f - s
   of them (duplicates emit nothing and are counted separately). *)
let process_broker t ~time ~dst ~origin ~payload =
  let node = t.brokers.(dst) in
  let duplicate =
    match payload with
    | Message.Subscribe { key; epoch; _ } ->
        Broker_node.knows_subscription node ~key
        && epoch <= Broker_node.subscription_epoch node ~key
    | Message.Publish _ | Message.Unsubscribe _ | Message.Advertise _
    | Message.Unadvertise _ | Message.Ack _ ->
        false
  in
  let scans0, hits0 = Broker_node.match_counters node in
  let fo0, frames0, lag0, reconn0 = Broker_node.repl_counters node in
  let actions = Broker_node.handle node ~now:time ~origin payload in
  let scans1, hits1 = Broker_node.match_counters node in
  let fo1, frames1, lag1, reconn1 = Broker_node.repl_counters node in
  t.metrics.Metrics.match_scans <-
    t.metrics.Metrics.match_scans + (scans1 - scans0);
  t.metrics.Metrics.match_index_hits <-
    t.metrics.Metrics.match_index_hits + (hits1 - hits0);
  t.metrics.Metrics.failovers <- t.metrics.Metrics.failovers + (fo1 - fo0);
  t.metrics.Metrics.repl_frames_shipped <-
    t.metrics.Metrics.repl_frames_shipped + (frames1 - frames0);
  t.metrics.Metrics.repl_lag_lsns <-
    t.metrics.Metrics.repl_lag_lsns + (lag1 - lag0);
  t.metrics.Metrics.reconnects_after_failover <-
    t.metrics.Metrics.reconnects_after_failover + (reconn1 - reconn0);
  (match payload with
  | Message.Subscribe _ when duplicate ->
      t.metrics.Metrics.duplicate_drops <- t.metrics.Metrics.duplicate_drops + 1
  | Message.Subscribe _ ->
      let out =
        List.length
          (List.filter
             (fun n ->
               match origin with
               | Message.Link l -> l <> n
               | Message.Client _ | Message.Publisher -> true)
             (Topology.neighbors t.topology dst))
      in
      let sent =
        List.length
          (List.filter
             (function
               | Broker_node.Forward { payload = Message.Subscribe _; _ } -> true
               | Broker_node.Forward _ | Broker_node.Notify _ -> false)
             actions)
      in
      t.metrics.Metrics.suppressed_subscriptions <-
        t.metrics.Metrics.suppressed_subscriptions + (out - sent)
  | Message.Unsubscribe _ | Message.Publish _ | Message.Advertise _
  | Message.Unadvertise _ | Message.Ack _ ->
      ());
  apply_actions t ~time ~at:dst actions

let handle_ack t seq =
  match Reliable_link.ack t.link_sender ~seq with
  | None -> () (* late duplicate ack *)
  | Some timer -> cancel_retransmit t timer

let link_seen_window t ~src ~dst =
  match Hashtbl.find_opt t.link_seen (src, dst) with
  | Some w -> w
  | None ->
      let w = Reliable_link.receiver ~capacity:1024 () in
      Hashtbl.replace t.link_seen (src, dst) w;
      w

let process_deliver t ~time ~dst ~origin ~payload ~seq =
  if t.down.(dst) then
    (* A crashed broker discards everything addressed to it — and
       cannot ack, so the sender's retransmissions keep trying. *)
    t.metrics.Metrics.dropped_msgs <- t.metrics.Metrics.dropped_msgs + 1
  else begin
    let fresh =
      match (seq, origin) with
      | Some s, Message.Link src ->
          (* Always re-ack: the previous ack may have been the lost
             copy. Then dedup — retransmits and fault-injected
             duplicates must not be processed twice. *)
          send_link t ~time ~src:dst ~dst:src (Message.Ack { seq = s });
          let win = link_seen_window t ~src ~dst in
          (match Reliable_link.admit win ~seq:s with
          | `Duplicate ->
              t.metrics.Metrics.duplicate_drops <-
                t.metrics.Metrics.duplicate_drops + 1;
              false
          | `Fresh -> true)
      | _ -> true
    in
    if fresh then
      match payload with
      | Message.Ack { seq = acked } -> handle_ack t acked
      | _ -> process_broker t ~time ~dst ~origin ~payload
  end

(* Events generated during a draining [run] can be scheduled earlier
   than maintenance the clock already passed; clamping keeps the clock
   monotone. *)
let process t ~time ev =
  let time = Float.max time t.clock in
  t.clock <- time;
  match ev with
  | Deliver { dst; origin; payload; seq } ->
      process_deliver t ~time ~dst ~origin ~payload ~seq
  | Retransmit seq -> (
      match t.recovery with
      | None -> ()
      | Some _ -> (
          match Reliable_link.on_timeout t.link_sender ~seq with
          | Reliable_link.Not_tracked | Reliable_link.Give_up ->
              (* Acked meanwhile, or retry budget exhausted; in the
                 latter case lease refresh (or expiry) repairs whatever
                 this message would have installed (or removed). *)
              ()
          | Reliable_link.Retransmit { item; rto } ->
              t.metrics.Metrics.retransmissions <-
                t.metrics.Metrics.retransmissions + 1;
              count_link_message t item.li_payload;
              transmit_link t ~time ~src:item.li_src ~dst:item.li_dst
                ~payload:item.li_payload ~seq:(Some seq);
              Reliable_link.set_timer t.link_sender ~seq
                (push_retransmit t ~time:(time +. rto) seq)))
  | Refresh key -> (
      match (Hashtbl.find_opt t.client_subs key, t.recovery) with
      | Some (home, client, sub), Some r ->
          let epoch =
            Option.value ~default:1 (Hashtbl.find_opt t.next_epoch key)
          in
          Hashtbl.replace t.next_epoch key (epoch + 1);
          t.metrics.Metrics.lease_renewals <-
            t.metrics.Metrics.lease_renewals + 1;
          push_real t ~time
            (Deliver
               {
                 dst = home;
                 origin = Message.Client client;
                 payload = Message.Subscribe { key; sub; epoch };
                 seq = None;
               });
          let h =
            Event_queue.push_cancelable t.maint_q
              ~time:(time +. r.refresh_interval)
              (Refresh key)
          in
          Hashtbl.replace t.refresh_timers key h
      | _ -> Hashtbl.remove t.refresh_timers key)
  | Sweep b -> (
      match t.recovery with
      | None -> ()
      | Some r ->
          if not t.down.(b) then begin
            let expired, actions = Broker_node.sweep t.brokers.(b) ~now:time in
            t.metrics.Metrics.lease_expiries <-
              t.metrics.Metrics.lease_expiries + expired;
            apply_actions t ~time ~at:b actions;
            (* The sweep tick doubles as the compaction tick. *)
            ignore (Broker_node.maybe_compact t.brokers.(b))
          end;
          push_maintenance t ~time:(time +. r.refresh_interval) (Sweep b))
  | Crash b ->
      t.down.(b) <- true;
      t.metrics.Metrics.crashes <- t.metrics.Metrics.crashes + 1;
      (* The broker's unacked send state dies with it. *)
      List.iter
        (fun (_, timer) -> cancel_retransmit t timer)
        (Reliable_link.drop_where t.link_sender (fun i -> i.li_src = b))
  | Restart b ->
      t.down.(b) <- false;
      (* Durable brokers recover their routing table from the WAL;
         plain brokers come back empty. *)
      Broker_node.restart t.brokers.(b)

let rec run t =
  match Event_queue.pop t.real_q with
  | None -> ()
  | Some (time, ev) ->
      process t ~time ev;
      run t

(* Merge the two queues in time order up to the bound; a time tie goes
   to maintenance (a refresh fires before the deliveries it causes). *)
let run_until t ~time =
  if Float.is_nan time then invalid_arg "Network.run_until: NaN time";
  let continue = ref true in
  while !continue do
    let next_real = Event_queue.peek_time t.real_q in
    let next_maint = Event_queue.peek_time t.maint_q in
    let pop_from q =
      match Event_queue.pop q with
      | Some (et, ev) -> process t ~time:et ev
      | None ->
          (* Only reachable if Event_queue.peek_time returned a time for
             a queue that then popped empty — a broken queue invariant,
             not a caller error. *)
          invalid_arg
            "Network.run_until: event queue drained between peek and pop"
    in
    match (next_real, next_maint) with
    | Some r, Some m when r <= time && m <= time ->
        pop_from (if m <= r then t.maint_q else t.real_q)
    | Some r, _ when r <= time -> pop_from t.real_q
    | _, Some m when m <= time -> pop_from t.maint_q
    | _ -> continue := false
  done;
  if time > t.clock then t.clock <- time

let subscribe t ~broker:b ~client sub =
  ignore (broker t b);
  let key = t.next_sub_key in
  t.next_sub_key <- key + 1;
  Hashtbl.replace t.client_subs key (b, client, sub);
  push_real t ~time:t.clock
    (Deliver
       {
         dst = b;
         origin = Message.Client client;
         payload = Message.Subscribe { key; sub; epoch = 0 };
         seq = None;
       });
  (match t.recovery with
  | Some r ->
      Hashtbl.replace t.next_epoch key 1;
      let h =
        Event_queue.push_cancelable t.maint_q
          ~time:(t.clock +. r.refresh_interval)
          (Refresh key)
      in
      Hashtbl.replace t.refresh_timers key h
  | None -> ());
  key

let unsubscribe t ~broker:b ~key =
  match Hashtbl.find_opt t.client_subs key with
  | Some (home, client, _) when home = b ->
      Hashtbl.remove t.client_subs key;
      Hashtbl.remove t.next_epoch key;
      (match Hashtbl.find_opt t.refresh_timers key with
      | Some h ->
          ignore (Event_queue.cancel t.maint_q h);
          Hashtbl.remove t.refresh_timers key
      | None -> ());
      push_real t ~time:t.clock
        (Deliver
           {
             dst = b;
             origin = Message.Client client;
             payload = Message.Unsubscribe { key };
             seq = None;
           })
  | Some _ -> invalid_arg "Network.unsubscribe: key issued at another broker"
  | None -> invalid_arg "Network.unsubscribe: unknown key"

let advertise t ~broker:b ~client adv =
  ignore (broker t b);
  let key = t.next_adv_key in
  t.next_adv_key <- key + 1;
  push_real t ~time:t.clock
    (Deliver
       {
         dst = b;
         origin = Message.Client client;
         payload = Message.Advertise { key; adv };
         seq = None;
       });
  key

let unadvertise t ~broker:b ~client ~key =
  ignore (broker t b);
  push_real t ~time:t.clock
    (Deliver
       {
         dst = b;
         origin = Message.Client client;
         payload = Message.Unadvertise { key };
         seq = None;
       })

let publish t ~broker:b pub =
  ignore (broker t b);
  let id = t.next_pub_id in
  t.next_pub_id <- id + 1;
  push_real t ~time:t.clock
    (Deliver
       {
         dst = b;
         origin = Message.Publisher;
         payload = Message.Publish { id; pub };
         seq = None;
       });
  id

let notifications t = List.rev t.notifications

let expected_recipients t pub =
  (Hashtbl.fold
     (fun key (b, client, sub) acc ->
       if Publication.matches sub pub then (b, client, key) :: acc else acc)
     t.client_subs []
  [@problint.allow
    determinism "order-insensitive: result is sorted on the next line"])
  |> List.sort compare

let client_subscriptions t =
  (Hashtbl.fold
     (fun key (b, client, sub) acc -> (b, client, key, sub) :: acc)
     t.client_subs []
  [@problint.allow
    determinism "order-insensitive: result is sorted on the next line"])
  |> List.sort compare

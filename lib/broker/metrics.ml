type t = {
  mutable subscribe_msgs : int;
  mutable unsubscribe_msgs : int;
  mutable advertise_msgs : int;
  mutable publish_msgs : int;
  mutable ack_msgs : int;
  mutable notifications : int;
  mutable suppressed_subscriptions : int;
  mutable duplicate_drops : int;
  mutable dropped_msgs : int;
  mutable duplicated_msgs : int;
  mutable retransmissions : int;
  mutable lease_renewals : int;
  mutable lease_expiries : int;
  mutable crashes : int;
  mutable match_scans : int;
  mutable match_index_hits : int;
  mutable failovers : int;
  mutable repl_frames_shipped : int;
  mutable repl_lag_lsns : int;
  mutable reconnects_after_failover : int;
}

let create () =
  {
    subscribe_msgs = 0;
    unsubscribe_msgs = 0;
    advertise_msgs = 0;
    publish_msgs = 0;
    ack_msgs = 0;
    notifications = 0;
    suppressed_subscriptions = 0;
    duplicate_drops = 0;
    dropped_msgs = 0;
    duplicated_msgs = 0;
    retransmissions = 0;
    lease_renewals = 0;
    lease_expiries = 0;
    crashes = 0;
    match_scans = 0;
    match_index_hits = 0;
    failovers = 0;
    repl_frames_shipped = 0;
    repl_lag_lsns = 0;
    reconnects_after_failover = 0;
  }

let reset t =
  t.subscribe_msgs <- 0;
  t.unsubscribe_msgs <- 0;
  t.advertise_msgs <- 0;
  t.publish_msgs <- 0;
  t.ack_msgs <- 0;
  t.notifications <- 0;
  t.suppressed_subscriptions <- 0;
  t.duplicate_drops <- 0;
  t.dropped_msgs <- 0;
  t.duplicated_msgs <- 0;
  t.retransmissions <- 0;
  t.lease_renewals <- 0;
  t.lease_expiries <- 0;
  t.crashes <- 0;
  t.match_scans <- 0;
  t.match_index_hits <- 0;
  t.failovers <- 0;
  t.repl_frames_shipped <- 0;
  t.repl_lag_lsns <- 0;
  t.reconnects_after_failover <- 0

let total_messages t =
  t.subscribe_msgs + t.unsubscribe_msgs + t.advertise_msgs + t.publish_msgs
  + t.ack_msgs

let pp ppf t =
  Format.fprintf ppf
    "@[<v>subscribe msgs:  %d@,unsubscribe msgs: %d@,advertise msgs:  %d@,\
     publish msgs:    %d@,ack msgs:        %d@,notifications:   %d@,\
     suppressed subs: %d@,duplicate drops: %d@,dropped msgs:    %d@,\
     duplicated msgs: %d@,retransmissions: %d@,lease renewals:  %d@,\
     lease expiries:  %d@,crashes:         %d@,match scans:     %d@,\
     match idx hits:  %d@,failovers:       %d@,repl frames:     %d@,\
     repl lag lsns:   %d@,failover reconn: %d@]"
    t.subscribe_msgs t.unsubscribe_msgs t.advertise_msgs t.publish_msgs
    t.ack_msgs t.notifications t.suppressed_subscriptions t.duplicate_drops
    t.dropped_msgs t.duplicated_msgs t.retransmissions t.lease_renewals
    t.lease_expiries t.crashes t.match_scans t.match_index_hits t.failovers
    t.repl_frames_shipped t.repl_lag_lsns t.reconnects_after_failover

let equal a b =
  a.subscribe_msgs = b.subscribe_msgs
  && a.unsubscribe_msgs = b.unsubscribe_msgs
  && a.advertise_msgs = b.advertise_msgs
  && a.publish_msgs = b.publish_msgs
  && a.ack_msgs = b.ack_msgs
  && a.notifications = b.notifications
  && a.suppressed_subscriptions = b.suppressed_subscriptions
  && a.duplicate_drops = b.duplicate_drops
  && a.dropped_msgs = b.dropped_msgs
  && a.duplicated_msgs = b.duplicated_msgs
  && a.retransmissions = b.retransmissions
  && a.lease_renewals = b.lease_renewals
  && a.lease_expiries = b.lease_expiries
  && a.crashes = b.crashes
  && a.match_scans = b.match_scans
  && a.match_index_hits = b.match_index_hits
  && a.failovers = b.failovers
  && a.repl_frames_shipped = b.repl_frames_shipped
  && a.repl_lag_lsns = b.repl_lag_lsns
  && a.reconnects_after_failover = b.reconnects_after_failover

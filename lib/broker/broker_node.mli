(** A single broker implementing covering-based reverse path forwarding
    (§2), with the coverage policy applied {e per outgoing neighbour}:
    a subscription is forwarded to neighbour [N] unless the set of
    subscriptions already sent to [N] covers it — exactly the paper's
    Fig. 1 walk-through, where B4 withholds [s2] from B5/B7 (it sent
    them the covering [s1]) but still forwards it to B3 ([s1] came {e
    from} B3).

    The broker is a pure-ish state machine: {!handle} consumes a
    message and returns the actions the network layer must perform
    (forwards and client notifications). This keeps brokers
    independently testable without a simulator.

    With a [lease_ttl], every installed subscription (routing table and
    per-peer sent-sets) carries a lease; {!sweep} reclaims expired
    entries and returns the promotion forwards — the self-healing that
    repairs state stranded by lost [Unsubscribe]s. Refresh waves
    (Subscribe messages with a higher epoch) renew leases and repair
    neighbour state lost to crashes. *)

open Probsub_core

type t

type action =
  | Forward of { to_ : Topology.broker; payload : Message.payload }
  | Notify of { client : int; key : int; pub_id : int }
      (** Deliver publication [pub_id] to a local [client] whose
          subscription [key] matched. *)

val create :
  ?use_advertisements:bool -> ?lease_ttl:float -> ?dedup_capacity:int ->
  ?device:Probsub_store_log.Device.t -> ?recover:bool ->
  id:Topology.broker -> neighbors:Topology.broker list ->
  policy:Subscription_store.policy -> arity:int -> seed:int -> unit -> t
(** One coverage-checking store per outgoing neighbour plus a local
    routing store (the received table of Algorithm 5). With
    [use_advertisements] (default false), subscriptions are only
    forwarded towards neighbours from which an intersecting
    advertisement arrived — Siena-style advertisement routing; when a
    new advertisement opens a route, pending subscriptions are offered
    along it retroactively. [lease_ttl] (default: none) puts every
    installed subscription on a lease of that many simulated seconds.
    [dedup_capacity] (default 4096) bounds the publication-dedup
    window, so arbitrarily long simulations use constant memory.
    With a [device], the routing table is durable: every mutation is
    journalled through a {!Probsub_store_log.Store_log} write-ahead
    log before the handling call returns, and {!restart} recovers it
    instead of starting empty. The device is initialised fresh here
    unless [recover] (default false) is set {e and} the device holds
    recoverable state, in which case the routing table, bindings and
    epochs are rebuilt from it — the path a real server process takes
    when it comes back from kill -9 over its surviving WAL directory.
    Rng draws are sequenced so a durable broker behaves bit-identically
    to a plain one until it crashes.
    @raise Invalid_argument if [lease_ttl] is not positive. *)

val id : t -> Topology.broker

val handle :
  t -> now:float -> origin:Message.origin -> Message.payload -> action list
(** Process one message at simulated time [now] (leases installed or
    renewed by this message run [lease_ttl] from [now]):

    - [Subscribe], unknown key: record in the routing table; for each
      neighbour other than the origin, forward unless that neighbour's
      sent-set covers the subscription.
    - [Subscribe], known key with a {e higher} epoch (a lease refresh):
      renew every lease held for the key, re-offer it to neighbours
      whose sent-set entry is missing (repairing crash loss), and
      re-forward along links where it is active so the wave renews the
      whole dissemination tree. A known key at the current epoch (the
      same wave over another path) is dropped.
    - [Unsubscribe]: drop from the routing table; per neighbour, an
      unsubscribe forward is emitted only if the subscription had
      actually been sent there, and any subscriptions whose cover it
      provided are promoted — i.e. (re)sent (§5).
    - [Advertise]: record and flood; in advertisement mode, offer
      intersecting known subscriptions towards the link it came from.
    - [Unadvertise]: drop and flood. Subscriptions already routed along
      the perished path are left in place (they are harmless and will
      age out with their own unsubscriptions).
    - [Publish]: match against the routing table (Algorithm 5
      two-level matching); notify matching local clients and forward
      towards every neighbour that sent a matching subscription,
      except the link it arrived on. Duplicate publication ids within
      the dedup window are dropped.
    - [Ack]: no-op — the network's reliable-channel layer consumes
      acks before they reach a broker. *)

val sweep : t -> now:float -> int * action list
(** Expire every lease that ran out by [now], across the routing table
    and all per-neighbour sent-sets. Returns the number of reclaimed
    entries and the [Subscribe] forwards for peer-store promotions
    (entries whose expired coverer was the only reason they never
    crossed the link). *)

val reset : t -> unit
(** Forget all state — routing and peer tables, advertisements,
    epochs, the publication dedup window. On a durable broker the
    device is also re-initialised (a deliberate wipe, not a crash).
    Models an amnesiac crash/restart; the lease/refresh machinery
    reinstalls live state. *)

val restart : t -> unit
(** Come back from a crash. A durable broker recovers its routing
    table and key/origin/epoch maps from the device's WAL + snapshot —
    including a WAL damaged by the crash (cut back to the longest
    valid record prefix, with any entry the surviving log cannot fully
    account for removed); per-neighbour sent-sets, advertisements and
    the dedup window are soft state and start empty either way. On a
    broker without a device this is exactly {!reset}. *)

val durable : t -> bool
(** True when the broker journals its routing table to a device. *)

val wal_bytes : t -> int option
(** Current WAL size of a durable broker ([None] otherwise). *)

val compact_wal : t -> unit
(** Snapshot the routing table (with its key/origin/epoch bindings)
    and truncate the WAL. No-op on a non-durable broker. *)

val maybe_compact : ?threshold_bytes:int -> t -> bool
(** {!compact_wal} when the WAL exceeds [threshold_bytes] (default
    32 KiB); returns whether a compaction ran. *)

val knows_subscription : t -> key:int -> bool
(** True when [key] is in the routing table. *)

val client_subscriptions : t -> (int * int * Subscription.t) list
(** Routing-table entries installed by locally connected clients, as
    [(key, client, sub)] ascending by key. On a durable broker this is
    recovered from the WAL by {!restart}, so a real server can resume
    driving lease-refresh waves for its clients after a crash. *)

val subscription_epoch : t -> key:int -> int
(** Latest refresh epoch seen for [key] (0 if unknown or never
    refreshed). *)

val knows_advertisement : t -> key:int -> bool

val routing_table_size : t -> int
(** Live entries in the routing table. *)

val match_counters : t -> int * int
(** [(scans, index_hits)] accumulated by the routing store since
    creation: one-by-one [Publication.matches] tests (covered-set
    descent plus any non-indexed active scans) and counting-index hits
    processed on the indexed match path. Monotone; diff around a
    [handle] call to attribute matching work to one message. *)

val repl_counters : t -> int * int * int * int
(** [(failovers, repl_frames_shipped, repl_lag_lsns,
    reconnects_after_failover)] — replication observability, monotone
    like {!match_counters} (the lag entry is a high-water mark). Bumped
    by the server layer via the [note_*] functions below; diff around
    events to attribute them, or read directly for absolute values. *)

val note_failover : t -> unit
(** This broker just promoted itself from standby to primary. *)

val note_repl_frames : t -> n:int -> unit
(** [n] more WAL frames were shipped to (or applied by) a standby. *)

val note_repl_lag : t -> lag:int -> unit
(** A replication ack showed the standby [lag] LSNs behind; recorded
    as a high-water mark. *)

val note_failover_reconnect : t -> unit
(** A client resumed its session against this freshly promoted
    primary. *)

val fence_epoch : t -> int
(** The highest failover epoch this broker identity has committed to
    (0 when never fenced). Recovered from the WAL on a durable
    broker. *)

val raise_fence : t -> epoch:int -> unit
(** Commit to [epoch]: journalled (durable broker) before the call
    returns, so a later restart still knows. Monotone — lower or equal
    epochs are no-ops. *)

val active_towards : t -> neighbor:Topology.broker -> int
(** Subscriptions actually sent (active) towards a neighbour — the
    per-link subscription state whose growth the covering machinery
    bounds. @raise Invalid_argument for a non-neighbour. *)

val suppressed_towards : t -> neighbor:Topology.broker -> int
(** Subscriptions withheld from a neighbour by covering. *)

open Probsub_core

type link_profile = { drop : float; duplicate : float; jitter : float }

let perfect_link = { drop = 0.0; duplicate = 0.0; jitter = 0.0 }

let check_profile ctx { drop; duplicate; jitter } =
  let prob name p =
    if Float.is_nan p || p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault_plan.%s: %s outside [0, 1]" ctx name)
  in
  prob "drop" drop;
  prob "duplicate" duplicate;
  if Float.is_nan jitter || jitter < 0.0 then
    invalid_arg (Printf.sprintf "Fault_plan.%s: negative jitter" ctx)

type t = {
  default : link_profile;
  links : (Topology.broker * Topology.broker, link_profile) Hashtbl.t;
  crashes : (Topology.broker * float * float) list;
  active_from : float;
  active_until : float;
  rng : Prng.t option; (* None: provably fault-free, draws nothing *)
}

let zero =
  {
    default = perfect_link;
    links = Hashtbl.create 1;
    crashes = [];
    active_from = 0.0;
    active_until = infinity;
    rng = None;
  }

let create ?(drop = 0.0) ?(duplicate = 0.0) ?(jitter = 0.0) ?(links = [])
    ?(crashes = []) ?(active_from = 0.0) ?(active_until = infinity) ~seed () =
  let default = { drop; duplicate; jitter } in
  check_profile "create" default;
  List.iter (fun (_, p) -> check_profile "create" p) links;
  List.iter
    (fun (b, start, stop) ->
      if b < 0 then invalid_arg "Fault_plan.create: negative broker";
      if
        Float.is_nan start || Float.is_nan stop || start < 0.0 || stop <= start
      then invalid_arg "Fault_plan.create: bad crash window")
    crashes;
  if not (active_from >= 0.0 && active_until > active_from) then
    invalid_arg "Fault_plan.create: bad active window";
  let tbl = Hashtbl.create (max 8 (List.length links)) in
  List.iter (fun (link, p) -> Hashtbl.replace tbl link p) links;
  let faulty =
    default <> perfect_link
    || List.exists (fun (_, p) -> p <> perfect_link) links
  in
  {
    default;
    links = tbl;
    crashes;
    active_from;
    active_until;
    rng = (if faulty then Some (Prng.of_int seed) else None);
  }

let profile t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some p -> p
  | None -> t.default

(* One link traversal: the returned list holds one extra-latency offset
   per delivered copy — [] is a loss, a second element is a duplicated
   copy. Decisions consume the plan's own generator, so a run is
   reproducible given the same sequence of transmissions. *)
let transmit t ~src ~dst ~now =
  match t.rng with
  | None -> [ 0.0 ]
  | Some rng ->
      if now < t.active_from || now >= t.active_until then [ 0.0 ]
      else begin
        let p = profile t ~src ~dst in
        let copy () =
          if p.jitter > 0.0 then Prng.float rng *. p.jitter else 0.0
        in
        if p.drop > 0.0 && Prng.float rng < p.drop then []
        else begin
          let first = copy () in
          if p.duplicate > 0.0 && Prng.float rng < p.duplicate then
            [ first; copy () ]
          else [ first ]
        end
      end

let is_down t ~broker ~now =
  List.exists
    (fun (b, start, stop) -> b = broker && now >= start && now < stop)
    t.crashes

let crash_windows t = t.crashes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>fault plan: drop %g, duplicate %g, jitter %g, %d link override(s), \
     %d crash window(s), active [%g, %g)@]"
    t.default.drop t.default.duplicate t.default.jitter
    (Hashtbl.length t.links) (List.length t.crashes) t.active_from
    t.active_until

(** Priority queue of timestamped events — the heart of the
    discrete-event simulator. A binary min-heap ordered by [(time,
    sequence)]: ties in time are delivered in insertion order, which
    keeps simulations deterministic. *)

type 'a t

type handle
(** Names a cancelable scheduled event (retransmission and lease
    timers). Handles are never reused within a queue. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time e] schedules [e] at [time].
    @raise Invalid_argument if [time] is negative or NaN. *)

val push_cancelable : 'a t -> time:float -> 'a -> handle
(** Like {!push} but returns a handle the event can be cancelled by.
    Cancellation is lazy: the slot is skimmed off when it surfaces, so
    scheduling stays O(log n) and cancelling O(1). *)

val cancel : 'a t -> handle -> bool
(** [cancel q h] prevents the event named by [h] from ever being
    popped. Returns false if it already fired or was already
    cancelled. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time without removing the event. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val drain : 'a t -> f:(time:float -> 'a -> unit) -> unit
(** Pop everything in order, applying [f]. Events pushed by [f] itself
    are processed too (the usual simulation loop). *)

(** The discrete-event broker-network simulator, with injectable link
    and broker faults and a lease-based recovery protocol.

    Wraps a {!Topology.t} worth of {!Broker_node.t}s around an
    {!Event_queue.t}: every link traversal costs [link_latency]
    simulated time; actions returned by a broker are scheduled as
    future deliveries. Client operations ({!subscribe}, {!publish},
    {!unsubscribe}) enqueue at the current simulation time; {!run}
    drains the queue to quiescence.

    Every broker-to-broker hop is routed through a {!Fault_plan}: the
    hop may be dropped, duplicated, or delayed by jitter, and brokers
    crash on schedule — discarding in-flight messages and, on restart,
    all soft state. Client/home-broker interactions are local and
    fault-free.

    With [recovery] enabled, control traffic (subscribe / unsubscribe /
    advertise / unadvertise) rides a reliable channel — sequence
    numbers, link-level acks, exponential-backoff retransmission,
    receiver-side dedup — and every installed subscription carries a
    lease that subscriber home brokers periodically refresh. Lost
    unsubscriptions age out via expiry sweeps; crashed brokers are
    re-populated by the next refresh wave.

    The network also tracks ground truth: which client subscriptions
    {e should} match each publication, so experiments can quantify the
    deliveries lost to erroneous probabilistic covering (§5) — and so
    {!Audit} can certify recovery after a fault era. *)

open Probsub_core

type t

type notification = {
  time : float;
  broker : Topology.broker;
  client : int;
  sub_key : int;
  pub_id : int;
}

type recovery = {
  lease_ttl : float;  (** Lease duration for installed subscriptions. *)
  refresh_interval : float;
      (** Period of subscriber refresh waves and broker expiry sweeps.
          Must be below [lease_ttl] or live state would flap. *)
  rto : float;  (** Initial ack timeout before a retransmission. *)
  max_retries : int;  (** Retransmissions per message before giving up. *)
}

val default_recovery : recovery
(** 30 s leases refreshed every 10 s; 4 s initial RTO, 6 retries. *)

val create :
  ?policy:Subscription_store.policy -> ?link_latency:float ->
  ?use_advertisements:bool -> ?fault_plan:Fault_plan.t ->
  ?recovery:recovery -> ?dedup_capacity:int ->
  ?devices:Probsub_store_log.Device.t array -> topology:Topology.t ->
  arity:int -> seed:int -> unit -> t
(** Default policy: pairwise; default latency 1.0. With
    [use_advertisements] (default false), subscriptions are routed only
    towards brokers whose publishers advertised intersecting content
    (Siena-style); publishers must then {!advertise} before their
    publications can be routed beyond subscribers' own brokers.
    [fault_plan] defaults to {!Fault_plan.zero}; without a plan and
    without [recovery] the network behaves bit-identically to the
    fault-free simulator (no extra messages, no RNG draws, identical
    metrics). [recovery] (default off) enables the reliable control
    channel, leases, refresh waves and expiry sweeps.
    [dedup_capacity] bounds each broker's publication dedup window.
    [devices] (one per broker, in broker-id order) makes every broker's
    routing table durable: mutations are journalled to the broker's
    device, a [Restart] inside a crash window recovers from the WAL
    instead of starting empty, and the periodic sweep tick compacts
    oversized WALs into snapshots.
    @raise Invalid_argument if the latency is not positive, the
    recovery parameters are malformed, [devices] does not match the
    topology size, or a crash window names a broker outside the
    topology. *)

val topology : t -> Topology.t
val now : t -> float
val metrics : t -> Metrics.t
val broker : t -> Topology.broker -> Broker_node.t
(** Direct access for white-box assertions in tests. *)

val broker_down : t -> Topology.broker -> bool
(** True while the broker is inside a crash window. *)

val subscribe :
  t -> broker:Topology.broker -> client:int -> Subscription.t -> int
(** Issue a subscription at a broker's local client; returns its
    network-wide key. Takes effect as the queue drains; with recovery
    on, a refresh timer starts ticking. *)

val unsubscribe : t -> broker:Topology.broker -> key:int -> unit
(** Cancel a subscription previously issued at that broker; cancels its
    refresh timer. @raise Invalid_argument if [key] was not issued
    there. *)

val advertise :
  t -> broker:Topology.broker -> client:int -> Subscription.t -> int
(** Declare a publisher's content box at its broker; returns the
    advertisement key. Only meaningful with [use_advertisements]. *)

val unadvertise : t -> broker:Topology.broker -> client:int -> key:int -> unit

val publish : t -> broker:Topology.broker -> Publication.t -> int
(** Publish at a broker; returns the publication id. *)

val run : t -> unit
(** Process queued events until no {e real} work remains: deliveries
    and retransmission timeouts are drained, while periodic maintenance
    (lease refreshes, expiry sweeps, scheduled crash windows) stays
    queued — otherwise a recovery-enabled network would never go
    quiescent. Terminates even under faults: retransmissions are
    capped and refresh waves are epoch-deduplicated. *)

val run_until : t -> time:float -> unit
(** Process every event scheduled at or before [time] — including
    maintenance — then advance the clock to [time]. This is how
    simulated wall-time passes: refresh cycles fire, leases expire,
    crash windows open and close. @raise Invalid_argument on NaN. *)

val notifications : t -> notification list
(** All client deliveries so far, in delivery order. *)

val expected_recipients : t -> Publication.t -> (Topology.broker * int * int) list
(** Ground truth: [(broker, client, sub_key)] for every live client
    subscription matching the publication — what a loss-free system
    would deliver. Sorted. *)

val client_subscriptions : t -> (Topology.broker * int * int * Subscription.t) list
(** All live client subscriptions as [(broker, client, key, sub)].
    Sorted. *)

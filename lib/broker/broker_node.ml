open Probsub_core

type action =
  | Forward of { to_ : Topology.broker; payload : Message.payload }
  | Notify of { client : int; key : int; pub_id : int }

(* Coverage-checked set of subscriptions offered towards one
   neighbour, with the network-wide key <-> store-id correspondence. *)
type peer_state = {
  store : Subscription_store.t;
  key_to_id : (int, Subscription_store.id) Hashtbl.t;
  id_to_key : (Subscription_store.id, int) Hashtbl.t;
}

type t = {
  id : Topology.broker;
  neighbors : Topology.broker list;
  use_advertisements : bool;
  lease_ttl : float option;
  fresh_store : unit -> Subscription_store.t;
  mutable routing : Subscription_store.t; (* the received table of Alg. 5 *)
  r_key_to_id : (int, Subscription_store.id) Hashtbl.t;
  r_id_to_key : (Subscription_store.id, int) Hashtbl.t;
  r_origin : (Subscription_store.id, Message.origin) Hashtbl.t;
  (* Latest refresh epoch seen per key: a given epoch of a known key is
     forwarded at most once, so lease-refresh waves terminate. *)
  r_epoch : (int, int) Hashtbl.t;
  peers : (Topology.broker, peer_state) Hashtbl.t;
  ads : (int, Subscription.t * Message.origin) Hashtbl.t;
  seen_pubs : Dedup_window.t;
  (* Scratch set for handle_publish's forward-link dedup; always empty
     between calls. *)
  link_mark : (int, unit) Hashtbl.t;
}

let create ?(use_advertisements = false) ?lease_ttl ?(dedup_capacity = 4096)
    ~id ~neighbors ~policy ~arity ~seed () =
  (match lease_ttl with
  | Some ttl when not (ttl > 0.0) ->
      invalid_arg "Broker_node.create: lease_ttl must be positive"
  | Some _ | None -> ());
  let rng = Prng.of_int (seed + (id * 7919)) in
  let fresh_store () =
    Subscription_store.create ~policy ~arity
      ~seed:(Int64.to_int (Prng.bits64 rng) land 0x3FFFFFFF)
      ()
  in
  let peers = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace peers n
        {
          store = fresh_store ();
          key_to_id = Hashtbl.create 32;
          id_to_key = Hashtbl.create 32;
        })
    neighbors;
  {
    id;
    neighbors;
    use_advertisements;
    lease_ttl;
    fresh_store;
    routing = fresh_store ();
    r_key_to_id = Hashtbl.create 64;
    r_id_to_key = Hashtbl.create 64;
    r_origin = Hashtbl.create 64;
    r_epoch = Hashtbl.create 64;
    peers;
    ads = Hashtbl.create 16;
    seen_pubs = Dedup_window.create ~capacity:dedup_capacity;
    link_mark = Hashtbl.create 8;
  }

let id t = t.id
let knows_subscription t ~key = Hashtbl.mem t.r_key_to_id key

let subscription_epoch t ~key =
  Option.value ~default:0 (Hashtbl.find_opt t.r_epoch key)

let knows_advertisement t ~key = Hashtbl.mem t.ads key
let routing_table_size t = Subscription_store.size t.routing

(* Crash/restart: all soft state is lost; leases and refreshes
   reinstall it. *)
let reset t =
  t.routing <- t.fresh_store ();
  Hashtbl.reset t.r_key_to_id;
  Hashtbl.reset t.r_id_to_key;
  Hashtbl.reset t.r_origin;
  Hashtbl.reset t.r_epoch;
  List.iter
    (fun n ->
      Hashtbl.replace t.peers n
        {
          store = t.fresh_store ();
          key_to_id = Hashtbl.create 32;
          id_to_key = Hashtbl.create 32;
        })
    t.neighbors;
  Hashtbl.reset t.ads;
  Dedup_window.clear t.seen_pubs

let peer t neighbor =
  match Hashtbl.find_opt t.peers neighbor with
  | Some p -> p
  | None -> invalid_arg "Broker_node: not a neighbour"

let active_towards t ~neighbor =
  Subscription_store.active_count (peer t neighbor).store

let suppressed_towards t ~neighbor =
  Subscription_store.covered_count (peer t neighbor).store

let lease_end t ~now =
  match t.lease_ttl with None -> infinity | Some ttl -> now +. ttl

let out_neighbors t ~origin =
  List.filter
    (fun n ->
      match origin with
      | Message.Link l -> l <> n
      | Message.Client _ | Message.Publisher -> true)
    t.neighbors

(* In advertisement mode a subscription is only worth sending towards
   [neighbor] if some advertisement that arrived over that link
   intersects it: publications matching the subscription can only come
   from that direction if a publisher there declared overlapping
   content. *)
let neighbor_advertises t ~neighbor sub =
  (not t.use_advertisements)
  || (Hashtbl.fold
        (fun _ (adv, origin) found ->
          found
          || match origin with
             | Message.Link l ->
                 l = neighbor && Subscription.intersects adv sub
             | Message.Client _ | Message.Publisher -> false)
        t.ads false
     [@problint.allow
       determinism
         "existence check: boolean OR over all entries is \
          order-insensitive"])

(* Offer one subscription towards one neighbour: the per-neighbour
   store decides (by policy) whether it actually crosses the link. *)
let offer_to_peer t ~now ~neighbor ~key ~sub ~epoch =
  let p = peer t neighbor in
  if Hashtbl.mem p.key_to_id key then []
  else begin
    let pid, placement =
      Subscription_store.add_with_expiry p.store sub
        ~expires_at:(lease_end t ~now)
    in
    Hashtbl.replace p.key_to_id key pid;
    Hashtbl.replace p.id_to_key pid key;
    match placement with
    | Subscription_store.Active ->
        [ Forward
            { to_ = neighbor; payload = Message.Subscribe { key; sub; epoch } };
        ]
    | Subscription_store.Covered _ -> []
  end

let handle_subscribe t ~now ~origin ~key ~sub ~epoch =
  match Hashtbl.find_opt t.r_key_to_id key with
  | None ->
      let rid, _ =
        Subscription_store.add_with_expiry t.routing sub
          ~expires_at:(lease_end t ~now)
      in
      Hashtbl.replace t.r_key_to_id key rid;
      Hashtbl.replace t.r_id_to_key rid key;
      Hashtbl.replace t.r_origin rid origin;
      Hashtbl.replace t.r_epoch key epoch;
      List.concat_map
        (fun n ->
          if neighbor_advertises t ~neighbor:n sub then
            offer_to_peer t ~now ~neighbor:n ~key ~sub ~epoch
          else [])
        (out_neighbors t ~origin)
  | Some rid ->
      if epoch <= subscription_epoch t ~key then
        (* Same epoch over another path, or a stale refresh: drop. *)
        []
      else begin
        (* A fresh refresh wave: renew every lease this broker holds for
           the key, repair per-peer state the neighbour may have lost,
           and pass the wave down the dissemination tree. *)
        Hashtbl.replace t.r_epoch key epoch;
        Subscription_store.renew t.routing rid
          ~expires_at:(lease_end t ~now);
        List.concat_map
          (fun n ->
            let p = peer t n in
            match Hashtbl.find_opt p.key_to_id key with
            | Some pid ->
                Subscription_store.renew p.store pid
                  ~expires_at:(lease_end t ~now);
                if Subscription_store.is_active p.store pid then
                  [ Forward
                      {
                        to_ = n;
                        payload = Message.Subscribe { key; sub; epoch };
                      };
                  ]
                else []
            | None ->
                if neighbor_advertises t ~neighbor:n sub then
                  offer_to_peer t ~now ~neighbor:n ~key ~sub ~epoch
                else [])
          (out_neighbors t ~origin)
      end

let handle_unsubscribe t ~origin ~key =
  match Hashtbl.find_opt t.r_key_to_id key with
  | None -> []
  | Some rid ->
      ignore (Subscription_store.remove t.routing rid);
      Hashtbl.remove t.r_key_to_id key;
      Hashtbl.remove t.r_id_to_key rid;
      Hashtbl.remove t.r_origin rid;
      Hashtbl.remove t.r_epoch key;
      List.concat_map
        (fun n ->
          let p = peer t n in
          match Hashtbl.find_opt p.key_to_id key with
          | None -> []
          | Some pid ->
              let was_active = Subscription_store.is_active p.store pid in
              let promoted = Subscription_store.remove p.store pid in
              Hashtbl.remove p.key_to_id key;
              Hashtbl.remove p.id_to_key pid;
              let unsub_forward =
                if was_active then
                  [ Forward { to_ = n; payload = Message.Unsubscribe { key } } ]
                else []
              in
              (* §5: subscriptions this one was covering towards n are
                 promoted and must now actually be sent. *)
              let promotions =
                List.map
                  (fun pid' ->
                    let key' = Hashtbl.find p.id_to_key pid' in
                    let sub' = Subscription_store.find p.store pid' in
                    Forward
                      {
                        to_ = n;
                        payload =
                          Message.Subscribe
                            {
                              key = key';
                              sub = sub';
                              epoch = subscription_epoch t ~key:key';
                            };
                      })
                  promoted
              in
              unsub_forward @ promotions)
        (out_neighbors t ~origin)

let handle_advertise t ~now ~origin ~key ~adv =
  if knows_advertisement t ~key then []
  else begin
    Hashtbl.replace t.ads key (adv, origin);
    (* Flood the advertisement itself. *)
    let floods =
      List.map
        (fun n ->
          Forward { to_ = n; payload = Message.Advertise { key; adv } })
        (out_neighbors t ~origin)
    in
    (* A new route towards a publisher opened: subscriptions pending on
       an intersecting advertisement must now be offered that way. *)
    let back_offers =
      match origin with
      | Message.Client _ | Message.Publisher -> []
      | Message.Link l ->
          (* Collect-then-sort so the offers hit the wire in routing-id
             order, not hash order: message order is observable in
             traces and must not depend on table history. *)
          let pending =
            (Hashtbl.fold
               (fun rid sub_origin acc -> (rid, sub_origin) :: acc)
               t.r_origin []
            [@problint.allow
              determinism
                "order-insensitive collection; the list is sorted by \
                 routing id on the next line before any effect happens"])
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          in
          List.concat_map
            (fun (rid, sub_origin) ->
              let key' = Hashtbl.find t.r_id_to_key rid in
              let sub = Subscription_store.find t.routing rid in
              let towards_origin =
                match sub_origin with
                | Message.Link l' -> l' = l
                | Message.Client _ | Message.Publisher -> false
              in
              if
                t.use_advertisements && (not towards_origin)
                && Subscription.intersects adv sub
              then
                offer_to_peer t ~now ~neighbor:l ~key:key' ~sub
                  ~epoch:(subscription_epoch t ~key:key')
              else [])
            pending
    in
    floods @ back_offers
  end

let handle_unadvertise t ~origin ~key =
  if not (knows_advertisement t ~key) then []
  else begin
    Hashtbl.remove t.ads key;
    List.map
      (fun n -> Forward { to_ = n; payload = Message.Unadvertise { key } })
      (out_neighbors t ~origin)
  end

let handle_publish t ~origin ~pub_id ~pub =
  if Dedup_window.mem t.seen_pubs pub_id then []
  else begin
    Dedup_window.add t.seen_pubs pub_id;
    let hits = Subscription_store.match_publication t.routing pub in
    let notifications = ref [] in
    let links = ref [] in
    (* first-seen order, O(1) membership *)
    List.iter
      (fun rid ->
        let key = Hashtbl.find t.r_id_to_key rid in
        match Hashtbl.find t.r_origin rid with
        | Message.Client c ->
            notifications := Notify { client = c; key; pub_id } :: !notifications
        | Message.Publisher -> ()
        | Message.Link b ->
            if not (Hashtbl.mem t.link_mark b) then begin
              Hashtbl.replace t.link_mark b ();
              links := b :: !links
            end)
      hits;
    let forwards =
      List.filter_map
        (fun b ->
          Hashtbl.remove t.link_mark b;
          let came_from =
            match origin with
            | Message.Link l -> l = b
            | Message.Client _ | Message.Publisher -> false
          in
          if came_from then None
          else
            Some
              (Forward { to_ = b; payload = Message.Publish { id = pub_id; pub } }))
        (List.rev !links)
    in
    List.rev !notifications @ forwards
  end

let handle t ~now ~origin payload =
  match payload with
  | Message.Subscribe { key; sub; epoch } ->
      handle_subscribe t ~now ~origin ~key ~sub ~epoch
  | Message.Unsubscribe { key } -> handle_unsubscribe t ~origin ~key
  | Message.Advertise { key; adv } -> handle_advertise t ~now ~origin ~key ~adv
  | Message.Unadvertise { key } -> handle_unadvertise t ~origin ~key
  | Message.Publish { id; pub } -> handle_publish t ~origin ~pub_id:id ~pub
  | Message.Ack _ -> [] (* link-layer; consumed by the network *)

(* Reclaim every lease that has run out. Expired routing entries vanish
   silently (the downstream copies expire on their own clocks); peer
   entries promoted by an expiry must now actually cross the link, like
   unsubscription promotions (§5). *)
let sweep t ~now =
  let expired_total = ref 0 in
  let expired_routing, _ = Subscription_store.expire t.routing ~now in
  List.iter
    (fun rid ->
      incr expired_total;
      match Hashtbl.find_opt t.r_id_to_key rid with
      | Some key ->
          Hashtbl.remove t.r_key_to_id key;
          Hashtbl.remove t.r_id_to_key rid;
          Hashtbl.remove t.r_origin rid;
          Hashtbl.remove t.r_epoch key
      | None -> ())
    expired_routing;
  let actions =
    List.concat_map
      (fun n ->
        let p = peer t n in
        let expired, promoted = Subscription_store.expire p.store ~now in
        List.iter
          (fun pid ->
            incr expired_total;
            match Hashtbl.find_opt p.id_to_key pid with
            | Some key ->
                Hashtbl.remove p.key_to_id key;
                Hashtbl.remove p.id_to_key pid
            | None -> ())
          expired;
        List.map
          (fun pid ->
            let key = Hashtbl.find p.id_to_key pid in
            let sub = Subscription_store.find p.store pid in
            Forward
              {
                to_ = n;
                payload =
                  Message.Subscribe
                    { key; sub; epoch = subscription_epoch t ~key };
              })
          promoted)
      t.neighbors
  in
  (!expired_total, actions)

open Probsub_core
module Store_log = Probsub_store_log.Store_log
module Log_codec = Probsub_store_log.Codec
module Device = Probsub_store_log.Device

type action =
  | Forward of { to_ : Topology.broker; payload : Message.payload }
  | Notify of { client : int; key : int; pub_id : int }

(* Coverage-checked set of subscriptions offered towards one
   neighbour, with the network-wide key <-> store-id correspondence. *)
type peer_state = {
  store : Subscription_store.t;
  key_to_id : (int, Subscription_store.id) Hashtbl.t;
  id_to_key : (Subscription_store.id, int) Hashtbl.t;
}

type t = {
  id : Topology.broker;
  neighbors : Topology.broker list;
  use_advertisements : bool;
  lease_ttl : float option;
  policy : Subscription_store.policy;
  arity : int;
  draw_seed : unit -> int;
  fresh_store : unit -> Subscription_store.t;
  device : Device.t option;
  (* WAL attached to [routing]; [None] iff [device] is [None]. *)
  mutable durable : Store_log.t option;
  mutable routing : Subscription_store.t; (* the received table of Alg. 5 *)
  r_key_to_id : (int, Subscription_store.id) Hashtbl.t;
  r_id_to_key : (Subscription_store.id, int) Hashtbl.t;
  r_origin : (Subscription_store.id, Message.origin) Hashtbl.t;
  (* Latest refresh epoch seen per key: a given epoch of a known key is
     forwarded at most once, so lease-refresh waves terminate. *)
  r_epoch : (int, int) Hashtbl.t;
  peers : (Topology.broker, peer_state) Hashtbl.t;
  ads : (int, Subscription.t * Message.origin) Hashtbl.t;
  seen_pubs : Dedup_window.t;
  (* Scratch set for handle_publish's forward-link dedup; always empty
     between calls. *)
  link_mark : (int, unit) Hashtbl.t;
  (* Replication fence: the highest failover epoch this broker identity
     has committed to. On a durable broker it is journalled, so a
     restarted ex-primary remembers it was superseded. *)
  mutable fence : int;
  (* Replication observability counters; monotone, diffed by the
     metrics layer exactly like [match_counters]. *)
  mutable c_failovers : int;
  mutable c_repl_frames : int;
  mutable c_repl_lag : int; (* high-water mark, hence monotone *)
  mutable c_reconnects : int;
}

let id t = t.id

(* The interned-id tables (key<->id, id->origin) are kept in lockstep
   with the stores; a missing entry is a broken internal invariant.
   Report it with context instead of leaking a bare Not_found out of a
   handler. *)
let table_get tbl k ~what =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None -> invalid_arg ("Broker_node: lockstep table missing " ^ what)

let knows_subscription t ~key = Hashtbl.mem t.r_key_to_id key

let subscription_epoch t ~key =
  Option.value ~default:0 (Hashtbl.find_opt t.r_epoch key)

let knows_advertisement t ~key = Hashtbl.mem t.ads key
let routing_table_size t = Subscription_store.size t.routing

let match_counters t =
  let st = Subscription_store.stats t.routing in
  ( st.Subscription_store.active_scans + st.Subscription_store.covered_scans,
    st.Subscription_store.index_hits )

let repl_counters t =
  (t.c_failovers, t.c_repl_frames, t.c_repl_lag, t.c_reconnects)

let note_failover t = t.c_failovers <- t.c_failovers + 1
let note_repl_frames t ~n = t.c_repl_frames <- t.c_repl_frames + n
let note_repl_lag t ~lag = if lag > t.c_repl_lag then t.c_repl_lag <- lag
let note_failover_reconnect t = t.c_reconnects <- t.c_reconnects + 1
let fence_epoch t = t.fence

(* Origin <-> (okind, oarg) for durable bindings; the store-log layer
   is broker-agnostic and carries plain ints. *)
let origin_code = function
  | Message.Client c -> (0, c)
  | Message.Publisher -> (1, 0)
  | Message.Link l -> (2, l)

let origin_of_code ~okind ~oarg =
  match okind with
  | 0 -> Some (Message.Client oarg)
  | 1 -> Some Message.Publisher
  | 2 -> Some (Message.Link oarg)
  | _ -> None

let reset_routing_maps t =
  Hashtbl.reset t.r_key_to_id;
  Hashtbl.reset t.r_id_to_key;
  Hashtbl.reset t.r_origin;
  Hashtbl.reset t.r_epoch

(* Per-neighbour sent-sets, advertisements and the dedup window are
   soft state under every crash model: the WAL covers the routing table
   only, and refresh waves rebuild the rest. *)
let reset_soft t =
  List.iter
    (fun n ->
      Hashtbl.replace t.peers n
        {
          store = t.fresh_store ();
          key_to_id = Hashtbl.create 32;
          id_to_key = Hashtbl.create 32;
        })
    t.neighbors;
  Hashtbl.reset t.ads;
  Dedup_window.clear t.seen_pubs

let start_fresh_routing t =
  match t.device with
  | None ->
      t.routing <- t.fresh_store ();
      t.durable <- None
  | Some device ->
      let store, log =
        Store_log.fresh ~policy:t.policy ~device ~arity:t.arity
          ~seed:(t.draw_seed ()) ()
      in
      t.routing <- store;
      t.durable <- Some log

(* Crash/restart without durable state: everything is lost; leases and
   refreshes reinstall it. *)
let reset t =
  start_fresh_routing t;
  reset_routing_maps t;
  reset_soft t;
  t.fence <- 0

(* Rebuild the routing maps from recovered bindings. Entries the log
   cannot fully account for — a torn tail that kept the add but lost
   its binding, or a binding whose origin no longer decodes — are
   removed from the store (journalled, so re-recovery agrees) rather
   than failing the whole recovery. *)
let install_recovered t store bindings epochs =
  reset_routing_maps t;
  let bound = Hashtbl.create 64 in
  List.iter
    (fun (b : Log_codec.binding) ->
      let origin =
        match
          origin_of_code ~okind:b.Log_codec.b_okind ~oarg:b.Log_codec.b_oarg
        with
        | Some (Message.Link l) when not (List.mem l t.neighbors) -> None
        | o -> o
      in
      match origin with
      | Some origin ->
          Hashtbl.replace bound b.Log_codec.b_rid ();
          Hashtbl.replace t.r_key_to_id b.Log_codec.b_key b.Log_codec.b_rid;
          Hashtbl.replace t.r_id_to_key b.Log_codec.b_rid b.Log_codec.b_key;
          Hashtbl.replace t.r_origin b.Log_codec.b_rid origin;
          Hashtbl.replace t.r_epoch b.Log_codec.b_key b.Log_codec.b_epoch
      | None -> (
          try ignore (Subscription_store.remove store b.Log_codec.b_rid)
          with Not_found -> ()))
    bindings;
  List.iter
    (fun (key, epoch) ->
      if Hashtbl.mem t.r_key_to_id key then Hashtbl.replace t.r_epoch key epoch)
    epochs;
  List.iter
    (fun (rid, _, _, _) ->
      if not (Hashtbl.mem bound rid) then
        ignore (Subscription_store.remove store rid))
    (Subscription_store.image store).Subscription_store.i_entries

(* Crash/restart with a device: recover the routing table from the
   WAL + snapshot; only soft state is lost. Falls back to an empty
   fresh log when the device holds nothing recoverable. *)
let restart t =
  (match t.device with
  | None ->
      start_fresh_routing t;
      reset_routing_maps t
  | Some device -> (
      match Store_log.recover ~device () with
      | Error _ ->
          start_fresh_routing t;
          reset_routing_maps t;
          t.fence <- 0
      | Ok r ->
          t.routing <- r.Store_log.r_store;
          t.durable <- Some r.Store_log.r_log;
          t.fence <- r.Store_log.r_fence;
          install_recovered t r.Store_log.r_store r.Store_log.r_bindings
            r.Store_log.r_epochs));
  reset_soft t

let create ?(use_advertisements = false) ?lease_ttl ?(dedup_capacity = 4096)
    ?device ?(recover = false) ~id ~neighbors ~policy ~arity ~seed () =
  (match lease_ttl with
  | Some ttl when not (ttl > 0.0) ->
      invalid_arg "Broker_node.create: lease_ttl must be positive"
  | Some _ | None -> ());
  let rng = Prng.of_int (seed + (id * 7919)) in
  let draw_seed () = Int64.to_int (Prng.bits64 rng) land 0x3FFFFFFF in
  let fresh_store () =
    Subscription_store.create ~policy ~arity ~seed:(draw_seed ()) ()
  in
  let peers = Hashtbl.create 8 in
  List.iter
    (fun n ->
      Hashtbl.replace peers n
        {
          store = fresh_store ();
          key_to_id = Hashtbl.create 32;
          id_to_key = Hashtbl.create 32;
        })
    neighbors;
  let routing, durable, recovered, fence =
    match device with
    | None -> (fresh_store (), None, None, 0)
    | Some device -> (
        let start_fresh () =
          (* Same rng draw as the non-durable path, so a durable
             broker's pre-crash behaviour is bit-identical to a plain
             one. *)
          let store, log =
            Store_log.fresh ~policy ~device ~arity ~seed:(draw_seed ()) ()
          in
          (store, Some log, None, 0)
        in
        if not recover then start_fresh ()
        else
          (* A process restarting over an existing device (the real
             server's kill -9 path): recover instead of wiping. The
             seed draw still happens so the rng sequence matches a
             fresh start. *)
          match Store_log.recover ~device () with
          | Error _ -> start_fresh ()
          | Ok r ->
              let (_ : int) = draw_seed () in
              ( r.Store_log.r_store,
                Some r.Store_log.r_log,
                Some (r.Store_log.r_bindings, r.Store_log.r_epochs),
                r.Store_log.r_fence ))
  in
  let t =
    {
      id;
      neighbors;
      use_advertisements;
      lease_ttl;
      policy;
      arity;
      draw_seed;
      fresh_store;
      device;
      durable;
      routing;
      r_key_to_id = Hashtbl.create 64;
      r_id_to_key = Hashtbl.create 64;
      r_origin = Hashtbl.create 64;
      r_epoch = Hashtbl.create 64;
      peers;
      ads = Hashtbl.create 16;
      seen_pubs = Dedup_window.create ~capacity:dedup_capacity;
      link_mark = Hashtbl.create 8;
      fence;
      c_failovers = 0;
      c_repl_frames = 0;
      c_repl_lag = 0;
      c_reconnects = 0;
    }
  in
  (match recovered with
  | Some (bindings, epochs) -> install_recovered t t.routing bindings epochs
  | None -> ());
  t

let peer t neighbor =
  match Hashtbl.find_opt t.peers neighbor with
  | Some p -> p
  | None -> invalid_arg "Broker_node: not a neighbour"

let active_towards t ~neighbor =
  Subscription_store.active_count (peer t neighbor).store

let suppressed_towards t ~neighbor =
  Subscription_store.covered_count (peer t neighbor).store

let lease_end t ~now =
  match t.lease_ttl with None -> infinity | Some ttl -> now +. ttl

let out_neighbors t ~origin =
  List.filter
    (fun n ->
      match origin with
      | Message.Link l -> l <> n
      | Message.Client _ | Message.Publisher -> true)
    t.neighbors

(* In advertisement mode a subscription is only worth sending towards
   [neighbor] if some advertisement that arrived over that link
   intersects it: publications matching the subscription can only come
   from that direction if a publisher there declared overlapping
   content. *)
let neighbor_advertises t ~neighbor sub =
  (not t.use_advertisements)
  || (Hashtbl.fold
        (fun _ (adv, origin) found ->
          found
          || match origin with
             | Message.Link l ->
                 l = neighbor && Subscription.intersects adv sub
             | Message.Client _ | Message.Publisher -> false)
        t.ads false
     [@problint.allow
       determinism
         "existence check: boolean OR over all entries is \
          order-insensitive"])

(* Offer one subscription towards one neighbour: the per-neighbour
   store decides (by policy) whether it actually crosses the link. *)
let offer_to_peer t ~now ~neighbor ~key ~sub ~epoch =
  let p = peer t neighbor in
  if Hashtbl.mem p.key_to_id key then []
  else begin
    let pid, placement =
      Subscription_store.add_with_expiry p.store sub
        ~expires_at:(lease_end t ~now)
    in
    Hashtbl.replace p.key_to_id key pid;
    Hashtbl.replace p.id_to_key pid key;
    match placement with
    | Subscription_store.Active ->
        [ Forward
            { to_ = neighbor; payload = Message.Subscribe { key; sub; epoch } };
        ]
    | Subscription_store.Covered _ -> []
  end

let handle_subscribe t ~now ~origin ~key ~sub ~epoch =
  match Hashtbl.find_opt t.r_key_to_id key with
  | None ->
      let rid, _ =
        Subscription_store.add_with_expiry t.routing sub
          ~expires_at:(lease_end t ~now)
      in
      Hashtbl.replace t.r_key_to_id key rid;
      Hashtbl.replace t.r_id_to_key rid key;
      Hashtbl.replace t.r_origin rid origin;
      Hashtbl.replace t.r_epoch key epoch;
      (match t.durable with
      | Some log ->
          let okind, oarg = origin_code origin in
          Store_log.log_binding log
            {
              Log_codec.b_rid = rid;
              b_key = key;
              b_okind = okind;
              b_oarg = oarg;
              b_epoch = epoch;
            }
      | None -> ());
      List.concat_map
        (fun n ->
          if neighbor_advertises t ~neighbor:n sub then
            offer_to_peer t ~now ~neighbor:n ~key ~sub ~epoch
          else [])
        (out_neighbors t ~origin)
  | Some rid ->
      if epoch <= subscription_epoch t ~key then
        (* Same epoch over another path, or a stale refresh: drop. *)
        []
      else begin
        (* A fresh refresh wave: renew every lease this broker holds for
           the key, repair per-peer state the neighbour may have lost,
           and pass the wave down the dissemination tree. *)
        Hashtbl.replace t.r_epoch key epoch;
        (match t.durable with
        | Some log -> Store_log.log_epoch log ~key ~epoch
        | None -> ());
        Subscription_store.renew t.routing rid
          ~expires_at:(lease_end t ~now);
        List.concat_map
          (fun n ->
            let p = peer t n in
            match Hashtbl.find_opt p.key_to_id key with
            | Some pid ->
                Subscription_store.renew p.store pid
                  ~expires_at:(lease_end t ~now);
                if Subscription_store.is_active p.store pid then
                  [ Forward
                      {
                        to_ = n;
                        payload = Message.Subscribe { key; sub; epoch };
                      };
                  ]
                else []
            | None ->
                if neighbor_advertises t ~neighbor:n sub then
                  offer_to_peer t ~now ~neighbor:n ~key ~sub ~epoch
                else [])
          (out_neighbors t ~origin)
      end

let handle_unsubscribe t ~origin ~key =
  match Hashtbl.find_opt t.r_key_to_id key with
  | None -> []
  | Some rid ->
      ignore (Subscription_store.remove t.routing rid);
      Hashtbl.remove t.r_key_to_id key;
      Hashtbl.remove t.r_id_to_key rid;
      Hashtbl.remove t.r_origin rid;
      Hashtbl.remove t.r_epoch key;
      List.concat_map
        (fun n ->
          let p = peer t n in
          match Hashtbl.find_opt p.key_to_id key with
          | None -> []
          | Some pid ->
              let was_active = Subscription_store.is_active p.store pid in
              let promoted = Subscription_store.remove p.store pid in
              Hashtbl.remove p.key_to_id key;
              Hashtbl.remove p.id_to_key pid;
              let unsub_forward =
                if was_active then
                  [ Forward { to_ = n; payload = Message.Unsubscribe { key } } ]
                else []
              in
              (* §5: subscriptions this one was covering towards n are
                 promoted and must now actually be sent. *)
              let promotions =
                List.map
                  (fun pid' ->
                    let key' = table_get p.id_to_key pid' ~what:"peer key for promoted id" in
                    let sub' = Subscription_store.find p.store pid' in
                    Forward
                      {
                        to_ = n;
                        payload =
                          Message.Subscribe
                            {
                              key = key';
                              sub = sub';
                              epoch = subscription_epoch t ~key:key';
                            };
                      })
                  promoted
              in
              unsub_forward @ promotions)
        (out_neighbors t ~origin)

let handle_advertise t ~now ~origin ~key ~adv =
  if knows_advertisement t ~key then []
  else begin
    Hashtbl.replace t.ads key (adv, origin);
    (* Flood the advertisement itself. *)
    let floods =
      List.map
        (fun n ->
          Forward { to_ = n; payload = Message.Advertise { key; adv } })
        (out_neighbors t ~origin)
    in
    (* A new route towards a publisher opened: subscriptions pending on
       an intersecting advertisement must now be offered that way. *)
    let back_offers =
      match origin with
      | Message.Client _ | Message.Publisher -> []
      | Message.Link l ->
          (* Collect-then-sort so the offers hit the wire in routing-id
             order, not hash order: message order is observable in
             traces and must not depend on table history. *)
          let pending =
            (Hashtbl.fold
               (fun rid sub_origin acc -> (rid, sub_origin) :: acc)
               t.r_origin []
            [@problint.allow
              determinism
                "order-insensitive collection; the list is sorted by \
                 routing id on the next line before any effect happens"])
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          in
          List.concat_map
            (fun (rid, sub_origin) ->
              let key' = table_get t.r_id_to_key rid ~what:"routing key for pending id" in
              let sub = Subscription_store.find t.routing rid in
              let towards_origin =
                match sub_origin with
                | Message.Link l' -> l' = l
                | Message.Client _ | Message.Publisher -> false
              in
              if
                t.use_advertisements && (not towards_origin)
                && Subscription.intersects adv sub
              then
                offer_to_peer t ~now ~neighbor:l ~key:key' ~sub
                  ~epoch:(subscription_epoch t ~key:key')
              else [])
            pending
    in
    floods @ back_offers
  end

let handle_unadvertise t ~origin ~key =
  if not (knows_advertisement t ~key) then []
  else begin
    Hashtbl.remove t.ads key;
    List.map
      (fun n -> Forward { to_ = n; payload = Message.Unadvertise { key } })
      (out_neighbors t ~origin)
  end

let handle_publish t ~origin ~pub_id ~pub =
  if Dedup_window.mem t.seen_pubs pub_id then []
  else begin
    Dedup_window.add t.seen_pubs pub_id;
    let hits = Subscription_store.match_publication t.routing pub in
    let notifications = ref [] in
    let links = ref [] in
    (* first-seen order, O(1) membership *)
    List.iter
      (fun rid ->
        let key = table_get t.r_id_to_key rid ~what:"routing key for matched id" in
        match table_get t.r_origin rid ~what:"origin for matched id" with
        | Message.Client c ->
            notifications := Notify { client = c; key; pub_id } :: !notifications
        | Message.Publisher -> ()
        | Message.Link b ->
            if not (Hashtbl.mem t.link_mark b) then begin
              Hashtbl.replace t.link_mark b ();
              links := b :: !links
            end)
      hits;
    let forwards =
      List.filter_map
        (fun b ->
          Hashtbl.remove t.link_mark b;
          let came_from =
            match origin with
            | Message.Link l -> l = b
            | Message.Client _ | Message.Publisher -> false
          in
          if came_from then None
          else
            Some
              (Forward { to_ = b; payload = Message.Publish { id = pub_id; pub } }))
        (List.rev !links)
    in
    List.rev !notifications @ forwards
  end

let handle t ~now ~origin payload =
  match payload with
  | Message.Subscribe { key; sub; epoch } ->
      handle_subscribe t ~now ~origin ~key ~sub ~epoch
  | Message.Unsubscribe { key } -> handle_unsubscribe t ~origin ~key
  | Message.Advertise { key; adv } -> handle_advertise t ~now ~origin ~key ~adv
  | Message.Unadvertise { key } -> handle_unadvertise t ~origin ~key
  | Message.Publish { id; pub } -> handle_publish t ~origin ~pub_id:id ~pub
  | Message.Ack _ -> [] (* link-layer; consumed by the network *)

(* Reclaim every lease that has run out. Expired routing entries vanish
   silently (the downstream copies expire on their own clocks); peer
   entries promoted by an expiry must now actually cross the link, like
   unsubscription promotions (§5). *)
let sweep t ~now =
  let expired_total = ref 0 in
  let expired_routing, _ = Subscription_store.expire t.routing ~now in
  List.iter
    (fun rid ->
      incr expired_total;
      match Hashtbl.find_opt t.r_id_to_key rid with
      | Some key ->
          Hashtbl.remove t.r_key_to_id key;
          Hashtbl.remove t.r_id_to_key rid;
          Hashtbl.remove t.r_origin rid;
          Hashtbl.remove t.r_epoch key
      | None -> ())
    expired_routing;
  let actions =
    List.concat_map
      (fun n ->
        let p = peer t n in
        let expired, promoted = Subscription_store.expire p.store ~now in
        List.iter
          (fun pid ->
            incr expired_total;
            match Hashtbl.find_opt p.id_to_key pid with
            | Some key ->
                Hashtbl.remove p.key_to_id key;
                Hashtbl.remove p.id_to_key pid
            | None -> ())
          expired;
        List.map
          (fun pid ->
            let key = table_get p.id_to_key pid ~what:"peer key for promoted id" in
            let sub = Subscription_store.find p.store pid in
            Forward
              {
                to_ = n;
                payload =
                  Message.Subscribe
                    { key; sub; epoch = subscription_epoch t ~key };
              })
          promoted)
      t.neighbors
  in
  (!expired_total, actions)

let durable t = Option.is_some t.durable
let wal_bytes t = Option.map Store_log.wal_size t.durable

(* Routing-table entries owed to locally connected clients, ascending
   by key. On a durable broker this survives a crash — it is the ground
   truth a restarted server resumes its lease-refresh waves from. *)
let client_subscriptions t =
  List.filter_map
    (fun (rid, sub, _, _) ->
      match
        (Hashtbl.find_opt t.r_id_to_key rid, Hashtbl.find_opt t.r_origin rid)
      with
      | Some key, Some (Message.Client c) -> Some (key, c, sub)
      | _ -> None)
    (Subscription_store.image t.routing).Subscription_store.i_entries
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* Current routing bindings, ascending by store id (the image order),
   for a snapshot. *)
let collect_bindings t =
  List.filter_map
    (fun (rid, _, _, _) ->
      match Hashtbl.find_opt t.r_id_to_key rid with
      | None -> None
      | Some key ->
          let okind, oarg = origin_code (table_get t.r_origin rid ~what:"origin for snapshot id") in
          Some
            {
              Log_codec.b_rid = rid;
              b_key = key;
              b_okind = okind;
              b_oarg = oarg;
              b_epoch = subscription_epoch t ~key;
            })
    (Subscription_store.image t.routing).Subscription_store.i_entries

let compact_wal t =
  match t.durable with
  | None -> ()
  | Some log -> Store_log.compact log t.routing ~bindings:(collect_bindings t)

let raise_fence t ~epoch =
  if epoch > t.fence then begin
    t.fence <- epoch;
    match t.durable with
    | Some log -> Store_log.log_fence log ~epoch
    | None -> ()
  end

let default_compact_threshold = 32768

let maybe_compact ?(threshold_bytes = default_compact_threshold) t =
  match t.durable with
  | None -> false
  | Some log ->
      if Store_log.wal_size log > threshold_bytes then begin
        compact_wal t;
        true
      end
      else false

open Probsub_core

type event =
  | Subscribe of {
      time : float;
      broker : int;
      client : int;
      sub : Subscription.t;
    }
  | Unsubscribe of { time : float; broker : int; sub_ref : int }
  | Publish of { time : float; broker : int; pub : Publication.t }

type t = event list

type params = {
  duration : float;
  subscribe_rate : float;
  unsubscribe_rate : float;
  publish_rate : float;
  brokers : int;
  m : int;
  match_bias : float;
}

let default_params =
  {
    duration = 100.0;
    subscribe_rate = 2.0;
    unsubscribe_rate = 0.01;
    publish_rate = 10.0;
    brokers = 8;
    m = 5;
    match_bias = 0.5;
  }

let time_of = function
  | Subscribe { time; _ } | Unsubscribe { time; _ } | Publish { time; _ } ->
      time

(* Competing exponential clocks: at each step the soonest of the three
   processes fires. Unsubscription intensity scales with the number of
   live subscriptions. *)
let generate ?(params = default_params) rng =
  let p = params in
  if p.brokers < 1 || p.m < 1 then invalid_arg "Trace.generate: bad params";
  let events = ref [] in
  (* (trace index, broker, subscription) of live subscriptions. *)
  let live = ref [] in
  let sub_count = ref 0 in
  let domain_hi = Probsub_workload.Scenario.domain_width - 1 in
  let next_sub_body () =
    match Probsub_workload.Scenario.comparison_stream rng ~m:p.m ~n:1 with
    | [ s ] -> s
    | l ->
        invalid_arg
          (Printf.sprintf
             "Trace.generate: Scenario.comparison_stream ~n:1 returned %d \
              subscriptions (expected exactly 1)"
             (List.length l))
  in
  let draw rate =
    if rate <= 0.0 then infinity else Probsub_workload.Dist.exponential rng ~rate
  in
  let clock = ref 0.0 in
  let continue = ref true in
  while !continue do
    let unsub_rate = p.unsubscribe_rate *. float_of_int (List.length !live) in
    let dt_sub = draw p.subscribe_rate in
    let dt_unsub = draw unsub_rate in
    let dt_pub = draw p.publish_rate in
    let dt = Float.min dt_sub (Float.min dt_unsub dt_pub) in
    clock := !clock +. dt;
    if !clock > p.duration || dt = infinity then continue := false
    else begin
      let broker = Prng.int rng p.brokers in
      if dt = dt_sub then begin
        let sub = next_sub_body () in
        events :=
          Subscribe { time = !clock; broker; client = !sub_count; sub }
          :: !events;
        live := (!sub_count, broker, sub) :: !live;
        incr sub_count
      end
      else if dt = dt_unsub then begin
        match !live with
        | [] -> ()
        | _ ->
            let n = List.length !live in
            let victim = List.nth !live (Prng.int rng n) in
            let sub_ref, home, _ = victim in
            live := List.filter (fun (r, _, _) -> r <> sub_ref) !live;
            events :=
              Unsubscribe { time = !clock; broker = home; sub_ref } :: !events
      end
      else begin
        let pub =
          match !live with
          | _ :: _ when Prng.float rng < p.match_bias ->
              let n = List.length !live in
              let _, _, target = List.nth !live (Prng.int rng n) in
              Probsub_workload.Scenario.random_matching_publication rng target
          | _ ->
              Publication.point
                (Array.init p.m (fun _ -> Prng.int_in rng ~lo:0 ~hi:domain_hi))
        in
        events := Publish { time = !clock; broker; pub } :: !events
      end
    end
  done;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Text format *)

let render_interval r =
  Printf.sprintf "%d:%d" (Interval.lo r) (Interval.hi r)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# probsub trace v1\n";
  List.iter
    (fun ev ->
      (match ev with
      | Subscribe { time; broker; client; sub } ->
          Buffer.add_string buf
            (Printf.sprintf "SUB %.6f %d %d %s" time broker client
               (String.concat " "
                  (List.map render_interval
                     (Array.to_list (Subscription.ranges sub)))))
      | Unsubscribe { time; broker; sub_ref } ->
          Buffer.add_string buf
            (Printf.sprintf "UNSUB %.6f %d %d" time broker sub_ref)
      | Publish { time; broker; pub } -> (
          match pub with
          | Publication.Point values ->
              Buffer.add_string buf
                (Printf.sprintf "PUB %.6f %d %s" time broker
                   (String.concat " "
                      (List.map string_of_int (Array.to_list values))))
          | Publication.Box _ ->
              invalid_arg "Trace.to_string: box publications not supported"));
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let of_string contents =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let parse_interval word =
    match String.split_on_char ':' word with
    | [ lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo <= hi -> Interval.make ~lo ~hi
        | _ -> fail "bad interval %S" word)
    | _ -> fail "bad interval %S" word
  in
  let parse_line lineno line =
    match
      String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
    with
    | "SUB" :: time :: broker :: client :: ranges ->
        let time = float_of_string_opt time
        and broker = int_of_string_opt broker
        and client = int_of_string_opt client in
        (match (time, broker, client, ranges) with
        | Some time, Some broker, Some client, _ :: _ ->
            Subscribe
              {
                time;
                broker;
                client;
                sub = Subscription.of_list (List.map parse_interval ranges);
              }
        | _ -> fail "line %d: bad SUB" lineno)
    | [ "UNSUB"; time; broker; sub_ref ] -> (
        match
          (float_of_string_opt time, int_of_string_opt broker,
           int_of_string_opt sub_ref)
        with
        | Some time, Some broker, Some sub_ref ->
            Unsubscribe { time; broker; sub_ref }
        | _ -> fail "line %d: bad UNSUB" lineno)
    | "PUB" :: time :: broker :: values ->
        let time = float_of_string_opt time
        and broker = int_of_string_opt broker in
        (* Parse totally: any unparseable coordinate shortens the list
           and fails the length check below — no Option.get needed. *)
        let parsed = List.filter_map int_of_string_opt values in
        (match (time, broker) with
        | Some time, Some broker
          when parsed <> [] && List.length parsed = List.length values ->
            Publish
              {
                time;
                broker;
                pub = Publication.point (Array.of_list parsed);
              }
        | _ -> fail "line %d: bad PUB" lineno)
    | verb :: _ -> fail "line %d: unknown verb %S" lineno verb
    | [] -> fail "line %d: empty" lineno
  in
  match
    let events =
      String.split_on_char '\n' contents
      |> List.mapi (fun i l -> (i + 1, String.trim l))
      |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
      |> List.map (fun (i, l) -> parse_line i l)
    in
    (* Validation: monotone time, consistent arity, valid refs. *)
    let arity = ref None in
    let check_arity n =
      match !arity with
      | None -> arity := Some n
      | Some a -> if a <> n then fail "inconsistent arity (%d vs %d)" a n
    in
    let subs_seen = ref 0 in
    let last = ref neg_infinity in
    List.iter
      (fun ev ->
        let t = time_of ev in
        if t < !last then fail "events out of order at t=%f" t;
        last := t;
        match ev with
        | Subscribe { sub; _ } ->
            check_arity (Subscription.arity sub);
            incr subs_seen
        | Unsubscribe { sub_ref; _ } ->
            if sub_ref < 0 || sub_ref >= !subs_seen then
              fail "UNSUB ref %d out of range" sub_ref
        | Publish { pub; _ } -> check_arity (Publication.arity pub))
      events;
    events
  with
  | events -> Ok events
  | exception Bad msg -> Error msg

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let replay net t =
  (* Trace subscription index -> network key. *)
  let keys = Hashtbl.create 64 in
  let next_ref = ref 0 in
  List.iter
    (fun ev ->
      (* Advance simulated time to the event's timestamp first, so
         scheduled maintenance — lease refreshes, expiry sweeps, crash
         windows — fires where the trace says it should. *)
      let time =
        match ev with
        | Subscribe { time; _ } | Unsubscribe { time; _ } | Publish { time; _ }
          ->
            time
      in
      Network.run_until net ~time;
      (match ev with
      | Subscribe { broker; client; sub; _ } ->
          let key = Network.subscribe net ~broker ~client sub in
          Hashtbl.replace keys !next_ref key;
          incr next_ref
      | Unsubscribe { broker; sub_ref; _ } -> (
          match Hashtbl.find_opt keys sub_ref with
          | Some key -> Network.unsubscribe net ~broker ~key
          | None -> invalid_arg "Trace.replay: dangling sub_ref")
      | Publish { broker; pub; _ } -> ignore (Network.publish net ~broker pub)))
    t;
  Network.run net

let stats t =
  List.fold_left
    (fun (s, u, p) -> function
      | Subscribe _ -> (s + 1, u, p)
      | Unsubscribe _ -> (s, u + 1, p)
      | Publish _ -> (s, u, p + 1))
    (0, 0, 0) t

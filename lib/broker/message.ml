type origin = Client of int | Publisher | Link of Topology.broker

type payload =
  | Subscribe of { key : int; sub : Probsub_core.Subscription.t; epoch : int }
  | Unsubscribe of { key : int }
  | Advertise of { key : int; adv : Probsub_core.Subscription.t }
  | Unadvertise of { key : int }
  | Publish of { id : int; pub : Probsub_core.Publication.t }
  | Ack of { seq : int }

let origin_equal a b =
  match (a, b) with
  | Client x, Client y -> x = y
  | Link x, Link y -> x = y
  | Publisher, Publisher -> true
  | (Client _ | Publisher | Link _), _ -> false

let is_control = function
  | Subscribe _ | Unsubscribe _ | Advertise _ | Unadvertise _ -> true
  | Publish _ | Ack _ -> false

let pp_origin ppf = function
  | Client c -> Format.fprintf ppf "client %d" c
  | Publisher -> Format.fprintf ppf "publisher"
  | Link b -> Format.fprintf ppf "broker %d" b

let pp_payload ppf = function
  | Subscribe { key; sub; epoch } ->
      Format.fprintf ppf "subscribe #%d.%d %a" key epoch
        Probsub_core.Subscription.pp sub
  | Unsubscribe { key } -> Format.fprintf ppf "unsubscribe #%d" key
  | Advertise { key; adv } ->
      Format.fprintf ppf "advertise #%d %a" key Probsub_core.Subscription.pp adv
  | Unadvertise { key } -> Format.fprintf ppf "unadvertise #%d" key
  | Publish { id; pub } ->
      Format.fprintf ppf "publish #%d %a" id Probsub_core.Publication.pp pub
  | Ack { seq } -> Format.fprintf ppf "ack seq %d" seq

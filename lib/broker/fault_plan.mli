(** Deterministic, seeded fault model for the broker network.

    A plan decides the fate of every link traversal — delivered,
    dropped, duplicated, delayed by jitter — and declares broker crash
    windows. All randomness comes from the plan's own generator, so a
    simulation under faults is exactly reproducible from its seed.

    Link faults apply only inside the plan's active window
    [\[active_from, active_until)]; outside it every link is perfect.
    A chaos experiment typically injects faults for a while, lets the
    lease/refresh machinery repair the damage, then audits deliveries
    ({!Audit}). Crash windows are independent of the active window. *)

type link_profile = {
  drop : float;  (** Per-traversal loss probability, in [0, 1]. *)
  duplicate : float;  (** Probability a delivered copy is doubled. *)
  jitter : float;  (** Extra latency is uniform over [0, jitter]. *)
}

val perfect_link : link_profile

type t

val zero : t
(** The all-zeros plan: every traversal delivers exactly one copy with
    zero jitter, nobody crashes, and {e no randomness is consumed} — a
    network driven by [zero] is bit-identical to one with no fault layer
    at all. *)

val create :
  ?drop:float -> ?duplicate:float -> ?jitter:float ->
  ?links:((Topology.broker * Topology.broker) * link_profile) list ->
  ?crashes:(Topology.broker * float * float) list ->
  ?active_from:float -> ?active_until:float -> seed:int -> unit -> t
(** [create ~seed ()] builds a plan. [drop]/[duplicate]/[jitter] set the
    default profile for every directed link; [links] overrides specific
    directed links [(src, dst)]. [crashes] lists [(broker, start, stop)]
    windows during which the broker is down: events addressed to it are
    discarded, and on restart it has lost all routing/peer soft state.
    @raise Invalid_argument on probabilities outside [0, 1], negative
    jitter, or malformed windows. *)

val transmit :
  t -> src:Topology.broker -> dst:Topology.broker -> now:float -> float list
(** Decide one traversal: one extra-latency offset per delivered copy.
    [[]] means the message is lost; a 2-element list means it is
    duplicated. The plan's generator advances once per decision. *)

val is_down : t -> broker:Topology.broker -> now:float -> bool

val crash_windows : t -> (Topology.broker * float * float) list

val pp : Format.formatter -> t -> unit

(** Network-wide traffic counters. Subscription traffic is the quantity
    the paper's covering machinery reduces; publication losses are the
    price of an erroneous probabilistic cover (Proposition 5). The
    fault/recovery counters quantify the injected damage and the repair
    work the lease protocol performs. *)

type t = {
  mutable subscribe_msgs : int;  (** Subscribe messages over links. *)
  mutable unsubscribe_msgs : int;
  mutable advertise_msgs : int;
      (** Advertise/unadvertise messages over links. *)
  mutable publish_msgs : int;  (** Publish messages over links. *)
  mutable ack_msgs : int;  (** Link-level control acknowledgements. *)
  mutable notifications : int;  (** Client deliveries. *)
  mutable suppressed_subscriptions : int;
      (** Subscribe forwards withheld because of a covering decision. *)
  mutable duplicate_drops : int;
      (** Messages dropped by duplicate suppression (cyclic routes,
          link-level sequence dedup, stale refresh epochs). *)
  mutable dropped_msgs : int;
      (** Link traversals lost to injected faults, plus in-flight
          messages discarded at a crashed broker. *)
  mutable duplicated_msgs : int;  (** Extra copies injected by faults. *)
  mutable retransmissions : int;
      (** Control messages re-sent after an ack timeout. *)
  mutable lease_renewals : int;
      (** Refresh cycles initiated by subscriber home brokers. *)
  mutable lease_expiries : int;
      (** Leased entries reclaimed by broker sweeps (stranded state
          self-healing). *)
  mutable crashes : int;  (** Broker crash events. *)
  mutable match_scans : int;
      (** One-by-one [Publication.matches] tests performed by routing
          stores while matching publications (covered-set descent plus
          any non-indexed active scans). *)
  mutable match_index_hits : int;
      (** Counting-index hits processed by routing stores while
          matching publications — the indexed data plane's unit of
          work, the quantity that replaces linear active scans. *)
  mutable failovers : int;
      (** Standby promotions to primary (epoch bumps with takeover). *)
  mutable repl_frames_shipped : int;
      (** WAL frames streamed from primaries to their standbys. *)
  mutable repl_lag_lsns : int;
      (** High-water mark of a standby's LSN lag behind its primary,
          as reported by replication acks. *)
  mutable reconnects_after_failover : int;
      (** Client sessions resumed against a freshly promoted primary. *)
}

val create : unit -> t
val reset : t -> unit
val total_messages : t -> int
(** Link messages of all kinds (notifications excluded). *)

val equal : t -> t -> bool
(** Field-wise equality — the zero-fault bit-identical regression. *)

val pp : Format.formatter -> t -> unit

(* Phase 1 of the two-phase driver: the whole-repo model.

   Every [.ml] under the scanned paths is parsed once; from the parse
   trees we build

   - a module table (capitalized basename -> compilation unit, with
     per-file [module X = Path.To.M] aliases expanded, so [Message.f]
     inside lib/server resolves through [module Message =
     Probsub_broker.Message] to lib/broker/message.ml);
   - per-module top-level value definitions, including values nested
     in [module Sub = struct ... end] (recorded as ["Sub.f"]);
   - a cross-module call graph: an edge per resolvable identifier
     reference inside a definition body (reference anywhere, not just
     application heads, so first-class uses like [List.iter Conn.close]
     keep their effects);
   - absorption regions: character ranges lexically under [try ... with]
     or under the scrutinee of a [match] that has [exception] branches.
     Raise effects do not propagate out of an absorbed region; blocking
     effects always do (catching an exception does not unblock a
     syscall);
   - the suppression scopes of every file, with a shared used-scope
     ledger so the driver can report allow annotations that suppressed
     nothing in the whole run.

   Known approximations, on purpose (this is a lint, not a verifier):
   references are resolved by module basename and one level of local
   alias; [open]-based unqualified cross-module references and
   closures passed through record fields are not tracked — effects of
   closures are attributed to the function that defines them. *)

open Ppxlib

type unit_info = {
  u_file : string;
  u_module : string;  (** capitalized basename, e.g. ["Conn"] *)
  u_ctx : Lint_ctx.t;
  u_str : structure;
  u_collected : Suppress.collected;
  u_aliases : (string * string) list;
      (** local [module X = ...M] aliases: X -> M *)
}

type def = {
  d_index : int;
  d_qual : string;  (** display name, e.g. ["Broker_server.step"] *)
  d_name : string;  (** name within the unit, e.g. ["step"] or ["Sub.f"] *)
  d_unit : unit_info;
  d_loc : Location.t;
  d_body : expression;
}

type call = {
  c_caller : int;
  c_callee : int;
  c_loc : Location.t;  (** the reference site, inside the caller *)
  c_absorbed : bool;  (** reference sits inside an absorption region *)
}

type t = {
  units : unit_info list;
  defs : def array;
  by_module : (string, unit_info) Hashtbl.t;
  def_lookup : (string * string, int) Hashtbl.t;  (** (module, name) -> index *)
  calls : call list array;  (** outgoing, per def *)
  callers : call list array;  (** incoming, per def *)
  absorb : (int, (int * int) list) Hashtbl.t;  (** def -> absorbed cnum ranges *)
  used_scopes : (string * int, unit) Hashtbl.t;  (** (file, attr cnum) *)
}

(* ------------------------------------------------------------------ *)
(* Construction *)

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let rec last_component = function
  | Longident.Lident s -> Some s
  | Ldot (_, s) -> Some s
  | Lapply (_, l) -> last_component l

let aliases_of (str : structure) =
  List.filter_map
    (fun si ->
      match si.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some alias; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } ->
          Option.map (fun target -> (alias, target)) (last_component txt)
      | _ -> None)
    str

(* Top-level value definitions, descending into [module Sub = struct]
   substructures with a dotted prefix. A later binding of the same
   name shadows the earlier one in the lookup table (the common case:
   references after the second definition). *)
let defs_of_unit u =
  let out = ref [] in
  let rec structure prefix str =
    List.iter
      (fun si ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let rec name_of p =
                  match p.ppat_desc with
                  | Ppat_var v -> Some v.txt
                  | Ppat_constraint (p, _) -> name_of p
                  | _ -> None
                in
                match name_of vb.pvb_pat with
                | Some name ->
                    let d_name = prefix ^ name in
                    out :=
                      {
                        d_index = 0 (* assigned later *);
                        d_qual = u.u_module ^ "." ^ d_name;
                        d_name;
                        d_unit = u;
                        d_loc = vb.pvb_loc;
                        d_body = vb.pvb_expr;
                      }
                      :: !out
                | None -> ())
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure inner; _ };
              _;
            } ->
            structure (prefix ^ sub ^ ".") inner
        | _ -> ())
      str
  in
  structure "" u.u_str;
  List.rev !out

(* Character ranges (within one definition body) whose raise effects
   are locally handled: bodies of [try], and scrutinees of a [match]
   that carries at least one [exception] branch. *)
let absorb_ranges_of_body body =
  let ranges = ref [] in
  let add (e : expression) =
    ranges := (e.pexp_loc.loc_start.pos_cnum, e.pexp_loc.loc_end.pos_cnum) :: !ranges
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_try (body, _) -> add body
        | Pexp_match (scrut, cases) ->
            let has_exn_case =
              List.exists
                (fun c ->
                  match c.pc_lhs.ppat_desc with
                  | Ppat_exception _ -> true
                  | _ -> false)
                cases
            in
            if has_exn_case then add scrut
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !ranges

let in_ranges ranges cnum =
  List.exists (fun (lo, hi) -> lo <= cnum && cnum <= hi) ranges

let absorbed_at t ~def ~(loc : Location.t) =
  match Hashtbl.find_opt t.absorb def with
  | Some ranges -> in_ranges ranges loc.loc_start.pos_cnum
  | None -> false

(* Resolve an identifier reference made inside unit [u] to a known
   definition. Unqualified names resolve within the same unit;
   qualified names resolve their last module component through the
   local alias table and then the repo-wide module table. *)
let resolve t (u : unit_info) lid =
  let lookup m name = Hashtbl.find_opt t.def_lookup (m, name) in
  match Lint_ast.flatten_lid lid with
  | [] -> None
  | [ name ] -> lookup u.u_module name
  | parts -> (
      let name = List.nth parts (List.length parts - 1) in
      let modname = List.nth parts (List.length parts - 2) in
      let modname =
        match List.assoc_opt modname u.u_aliases with
        | Some target -> target
        | None -> modname
      in
      match Hashtbl.find_opt t.by_module modname with
      | Some target -> lookup target.u_module name
      | None -> None)

let build (units : unit_info list) =
  let by_module = Hashtbl.create 64 in
  let ambiguous = Hashtbl.create 4 in
  List.iter
    (fun u ->
      if Hashtbl.mem by_module u.u_module then
        Hashtbl.replace ambiguous u.u_module ()
      else Hashtbl.replace by_module u.u_module u)
    units;
  (* A duplicated basename cannot be resolved soundly: drop it from the
     module table rather than guess. *)
  Hashtbl.iter (fun m () -> Hashtbl.remove by_module m) ambiguous;
  let defs =
    Array.of_list (List.concat_map defs_of_unit units)
  in
  Array.iteri (fun i d -> defs.(i) <- { d with d_index = i }) defs;
  let def_lookup = Hashtbl.create 256 in
  Array.iter
    (fun d -> Hashtbl.replace def_lookup (d.d_unit.u_module, d.d_name) d.d_index)
    defs;
  let absorb = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      match absorb_ranges_of_body d.d_body with
      | [] -> ()
      | ranges -> Hashtbl.replace absorb d.d_index ranges)
    defs;
  let t =
    {
      units;
      defs;
      by_module;
      def_lookup;
      calls = Array.make (Array.length defs) [];
      callers = Array.make (Array.length defs) [];
      absorb;
      used_scopes = Hashtbl.create 64;
    }
  in
  (* Call edges: every resolvable identifier reference, deduplicated
     per (caller, callee) keeping the first (chain-stable) site. *)
  Array.iter
    (fun d ->
      let seen = Hashtbl.create 8 in
      let edges = ref [] in
      let it =
        object
          inherit Ast_traverse.iter as super

          method! expression e =
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } -> (
                match resolve t d.d_unit txt with
                | Some callee when callee <> d.d_index ->
                    if not (Hashtbl.mem seen callee) then begin
                      Hashtbl.replace seen callee ();
                      edges :=
                        {
                          c_caller = d.d_index;
                          c_callee = callee;
                          c_loc = loc;
                          c_absorbed = absorbed_at t ~def:d.d_index ~loc;
                        }
                        :: !edges
                    end
                | _ -> ())
            | _ -> ());
            super#expression e
        end
      in
      it#expression d.d_body;
      t.calls.(d.d_index) <- List.rev !edges)
    defs;
  Array.iter
    (fun d ->
      List.iter
        (fun c -> t.callers.(c.c_callee) <- c :: t.callers.(c.c_callee))
        t.calls.(d.d_index))
    defs;
  t

(* ------------------------------------------------------------------ *)
(* Suppression queries shared by the passes *)

let scope_key (s : Suppress.scope) =
  (s.loc.loc_start.pos_fname, s.loc.loc_start.pos_cnum)

let mark_used t (s : Suppress.scope) = Hashtbl.replace t.used_scopes (scope_key s) ()
let scope_used t (s : Suppress.scope) = Hashtbl.mem t.used_scopes (scope_key s)

(* Is there a reasoned [@problint.allow rule "..."] covering character
   [cnum] of [file]? Marks the scope used on a hit: preventing a seed
   from propagating is a real use. *)
let allowed t ~rule ~(u : unit_info) ~cnum =
  let hit =
    List.find_opt
      (fun (s : Suppress.scope) ->
        String.equal s.rule rule
        && String.length (String.trim s.reason) > 0
        && s.start_c <= cnum && cnum <= s.end_c)
      u.u_collected.Suppress.scopes
  in
  match hit with
  | Some s ->
      mark_used t s;
      true
  | None -> false

let find_def t ~modname ~name =
  Option.map (fun i -> t.defs.(i)) (Hashtbl.find_opt t.def_lookup (modname, name))

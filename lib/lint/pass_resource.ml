(* Resource discipline: every acquired fd / channel must reach a close,
   an ownership transfer, or a guard on every path — including the
   raising ones (the fd-per-retry leak class in reconnect/backoff
   code).

   For each let- or match-bound acquisition ([Unix.socket],
   [Unix.openfile], [Unix.pipe], [Unix.accept], [open_in*],
   [open_out*], ...) the pass walks the continuation in source order,
   tracking an abstract state per bound name:

   - a *safe event* ends the obligation on that path: an explicit close
     ([Unix.close], [close_in], [close_out], or a call to a function
     whose name says it consumes — [close]/[close_*]/[shutdown]/
     [stop]/[release]); an ownership *transfer* (the name stored in a
     constructor/record/ref, returned, or passed to a callee whose
     parameters escape); or a *guard* ([Fun.protect] whose [~finally]
     mentions the name, or a [with_*] combinator).
   - a *may-raise event* is a call that can raise before the obligation
     is met: a raising primitive, any [Unix.*] call (except the closes),
     channel reads (End_of_file), or a call to a definition whose
     interprocedural may-raise summary is set. Events inside absorption
     regions ([try] bodies, [match ... with exception] scrutinees) do
     not count.

   Two findings, both at the acquisition site: "never released" (no
   safe event anywhere in the continuation) and "leaks on a raising
   path" (some path hits a may-raise event before its first safe
   event). Branches of [match]/[if]/[function] are alternatives: the
   obligation must be met on all of them.

   The may-raise and parameter-escape summaries are interprocedural —
   a helper that raises (or stores its argument) two modules away still
   poisons (or discharges) the obligation here. Transfer-first policy:
   a call that both transfers the name and may raise counts the
   transfer first — handing the fd to [Conn.create] is a transfer even
   though [Conn.create] can raise.

   Known approximation: source order stands in for evaluation order,
   and closures are walked inline where they are defined. This is a
   lint for the leak *class*, not an escape analysis. *)

open Ppxlib

let name = "resource"

let doc =
  "an acquired fd or channel (Unix.socket/openfile/pipe/accept, \
   open_in*/open_out*) must reach a close, an ownership transfer, or a \
   Fun.protect/with_* guard on every path, including raising ones"

(* ------------------------------------------------------------------ *)
(* Head classification *)

let last_of lid =
  match List.rev (Lint_ast.flatten_lid lid) with x :: _ -> Some x | [] -> None

let is_unix lid = List.mem "Unix" (Lint_ast.flatten_lid lid)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_release_head lid =
  match last_of lid with
  | Some last ->
      String.equal last "close" || starts_with "close_" last
      || String.equal last "shutdown" || String.equal last "stop"
      || String.equal last "release"
  | None -> false

let is_guard_head lid =
  match last_of lid with Some last -> starts_with "with_" last | None -> false

(* A call that ends the process image: the path cannot leak in the
   caller's sense (fork children that exec or exit hand their fds to
   the OS / the new image deliberately). *)
let is_terminator_head lid =
  match last_of lid with
  | Some last ->
      String.equal last "exit" || String.equal last "_exit"
      || starts_with "execv" last
  | None -> false

(* Raw primitives that merely *use* a handle: passing a tracked name to
   them is neither a transfer nor a release. *)
let whitelist_last =
  [
    "ignore"; "fst"; "snd"; "not"; "compare"; "min"; "max"; "=" ; "<>"; "==";
    "!="; "<"; ">"; "<="; ">="; "input_line"; "input"; "really_input";
    "really_input_string"; "input_char"; "input_byte"; "output_string";
    "output_bytes"; "output"; "output_char"; "output_byte"; "flush";
    "seek_in"; "seek_out"; "pos_in"; "pos_out"; "in_channel_length";
    "out_channel_length"; "set_binary_mode_in"; "set_binary_mode_out";
  ]

let is_whitelist_head lid =
  is_unix lid
  ||
  match last_of lid with
  | Some last -> List.mem last whitelist_last
  | None -> false

(* Channel reads raise End_of_file / Sys_error. *)
let raising_channel_last =
  [
    "input_line"; "input"; "really_input"; "really_input_string";
    "input_char"; "input_byte";
  ]

let is_raising_prim_head lid =
  match Lint_ast.flatten_lid lid with
  | [ ("failwith" | "invalid_arg" | "raise" | "raise_notrace") ] -> true
  | _ ->
      Lint_ast.lid_ends lid [ "Option"; "get" ]
      || Lint_ast.lid_ends lid [ "List"; "hd" ]
      || Lint_ast.lid_ends lid [ "Hashtbl"; "find" ]
      || (match last_of lid with
         | Some last -> List.mem last raising_channel_last
         | None -> false)
      || (is_unix lid && not (is_release_head lid))

let acquisition_prims =
  [
    [ "Unix"; "socket" ]; [ "Unix"; "openfile" ]; [ "Unix"; "pipe" ];
    [ "Unix"; "socketpair" ]; [ "Unix"; "accept" ]; [ "open_in" ];
    [ "open_in_bin" ]; [ "open_in_gen" ]; [ "open_out" ]; [ "open_out_bin" ];
    [ "open_out_gen" ];
  ]

let acquisition_of e =
  match Lint_ast.apply_head e with
  | Some (lid, _) ->
      if List.exists (fun p -> Lint_ast.lid_ends lid p) acquisition_prims then
        last_of lid
      else None
  | None -> None

(* ------------------------------------------------------------------ *)
(* Interprocedural summaries *)

(* Does this definition body contain a direct, unabsorbed may-raise
   site? (The Summary fixpoint lifts this through the call graph.) *)
let direct_may_raise (model : Model.t) (d : Model.def) =
  let found = ref None in
  let absorbed loc = Model.absorbed_at model ~def:d.Model.d_index ~loc in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (if !found = None then
           match e.pexp_desc with
           | Pexp_assert _ when not (absorbed e.pexp_loc) ->
               found := Some e.pexp_loc
           | Pexp_ident { txt; loc }
             when is_raising_prim_head txt && not (absorbed loc) ->
               found := Some loc
           | _ -> ());
        super#expression e
    end
  in
  it#expression d.Model.d_body;
  !found

let may_raise_summary (model : Model.t) =
  let prop =
    Summary.propagate model
      ~own_seeds:(fun d ->
        match direct_may_raise model d with
        | Some loc ->
            [
              {
                Summary.sd_def = d.Model.d_index;
                sd_loc = loc;
                sd_desc = "may raise";
                sd_kind = "may_raise";
              };
            ]
        | None -> [])
      ~respect_absorption:true
  in
  let n = Array.length model.Model.defs in
  let arr = Array.make n false in
  Hashtbl.iter
    (fun (def, _) _ -> if def < n then arr.(def) <- true)
    prop.Summary.reaches;
  arr

(* ------------------------------------------------------------------ *)
(* The ordered event walker *)

module SM = Map.Make (String)

type st = { safe : bool (* a safe event happened earlier on this path *) }

type env = {
  model : Model.t;
  def : Model.def;
  may_raise : bool array;
  escapes : bool array;
  ever_safe : (string, unit) Hashtbl.t;  (** any safe event, any path *)
  ever_leaky : (string, unit) Hashtbl.t;
      (** a may-raise hit some path before that path's first safe event *)
}

let mark_safe env nm sts =
  Hashtbl.replace env.ever_safe nm ();
  SM.update nm (Option.map (fun _ -> { safe = true })) sts

let may_raise_event env ~(loc : Location.t) sts =
  if Model.absorbed_at env.model ~def:env.def.Model.d_index ~loc then sts
  else begin
    SM.iter
      (fun nm st -> if not st.safe then Hashtbl.replace env.ever_leaky nm ())
      sts;
    sts
  end

let tracked_ident sts e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } when SM.mem x sts -> Some x
  | _ -> None

let rec walk env sts e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } when SM.mem x sts ->
      (* Bare use in an unknown context: stored, returned, captured —
         ownership moves. *)
      mark_safe env x sts
  | Pexp_apply (head, args) -> walk_apply env sts e head args
  | Pexp_assert _ -> may_raise_event env ~loc:e.pexp_loc sts
  | Pexp_let (_, vbs, body) ->
      let sts = List.fold_left (fun sts vb -> walk env sts vb.pvb_expr) sts vbs in
      walk env sts body
  | Pexp_sequence (a, b) -> walk env (walk env sts a) b
  | Pexp_ifthenelse (c, t, eo) ->
      let sts = walk env sts c in
      let branches = t :: Option.to_list eo in
      join env sts (List.map (fun b -> walk env sts b) branches)
        ~total:(eo <> None)
  | Pexp_match (scrut, cases) ->
      let sts = walk env sts scrut in
      join env sts (List.map (fun c -> walk_case env sts c) cases) ~total:true
  | Pexp_try (body, cases) ->
      (* Handlers continue from the after-body state: the [try
         Unix.close fd with Unix_error -> ()] idiom is a best-effort
         close and discharges the obligation on both outcomes. (A raise
         striking before a release inside the body is already invisible
         here — the body is an absorption region.) *)
      let after_body = walk env sts body in
      join env after_body
        (after_body :: List.map (fun c -> walk_case env after_body c) cases)
        ~total:true
  | Pexp_function (_, _, Pfunction_body b) -> walk env sts b
  | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
      join env sts (List.map (fun c -> walk_case env sts c) cases) ~total:true
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun sts e -> walk env sts e) sts es
  | Pexp_construct (_, Some a)
  | Pexp_variant (_, Some a)
  | Pexp_field (a, _)
  | Pexp_lazy a
  | Pexp_constraint (a, _)
  | Pexp_coerce (a, _, _)
  | Pexp_newtype (_, a)
  | Pexp_open (_, a)
  | Pexp_letmodule (_, _, a)
  | Pexp_letexception (_, a) ->
      walk env sts a
  | Pexp_setfield (a, _, b) | Pexp_while (a, b) ->
      walk env (walk env sts a) b
  | Pexp_for (_, a, b, _, c) -> walk env (walk env (walk env sts a) b) c
  | Pexp_record (fields, base) ->
      let sts =
        match base with Some b -> walk env sts b | None -> sts
      in
      List.fold_left (fun sts (_, e) -> walk env sts e) sts fields
  | _ -> sts

and walk_case env sts (c : case) =
  let sts =
    match c.pc_guard with Some g -> walk env sts g | None -> sts
  in
  walk env sts c.pc_rhs

(* Alternatives: the continuation is safe for a name only if every
   branch secured it. [total] is false when a missing else branch can
   fall through with nothing secured. *)
and join env pre branch_sts ~total =
  ignore env;
  let all = if total then branch_sts else pre :: branch_sts in
  SM.mapi
    (fun nm _ ->
      { safe = List.for_all (fun sts -> (SM.find nm sts).safe) all })
    pre

and walk_apply env sts whole head args =
  let loc = whole.pexp_loc in
  match Lint_ast.expr_ident head with
  | None ->
      let sts = walk env sts head in
      List.fold_left (fun sts (_, a) -> walk env sts a) sts args
  | Some lid ->
      if is_terminator_head lid then begin
        let sts =
          List.fold_left (fun sts (_, a) -> walk env sts a) sts args
        in
        SM.fold (fun nm _ sts -> mark_safe env nm sts) sts sts
      end
      else if Lint_ast.lid_ends lid [ "Fun"; "protect" ] then begin
        (* Guard every tracked name the ~finally thunk mentions, then
           walk the protected thunk normally. *)
        let finally, rest =
          List.partition
            (fun (lbl, _) ->
              match lbl with Labelled "finally" -> true | _ -> false)
            args
        in
        let sts =
          List.fold_left
            (fun sts (_, fin) ->
              SM.fold
                (fun nm _ sts ->
                  if expr_mentions fin nm then mark_safe env nm sts else sts)
                sts sts)
            sts finally
        in
        List.fold_left (fun sts (_, a) -> walk env sts a) sts rest
      end
      else if is_release_head lid then
        List.fold_left
          (fun sts (_, a) ->
            match tracked_ident sts a with
            | Some x -> mark_safe env x sts
            | None -> walk env sts a)
          sts args
      else if is_guard_head lid then
        List.fold_left
          (fun sts (_, a) ->
            match tracked_ident sts a with
            | Some x -> mark_safe env x sts
            | None -> walk env sts a)
          sts args
      else if is_whitelist_head lid then begin
        (* A raw use: no transfer. May still raise. *)
        let sts =
          List.fold_left
            (fun sts (_, a) ->
              match tracked_ident sts a with
              | Some _ -> sts
              | None -> walk env sts a)
            sts args
        in
        if is_raising_prim_head lid then may_raise_event env ~loc sts else sts
      end
      else if is_raising_prim_head lid then begin
        let sts =
          List.fold_left (fun sts (_, a) -> walk env sts a) sts args
        in
        may_raise_event env ~loc sts
      end
      else begin
        match Model.resolve env.model env.def.Model.d_unit lid with
        | Some callee ->
            (* Transfer-first: ownership moves into the callee before
               anything it does can raise. *)
            let param_escape = env.escapes.(callee) in
            let sts =
              List.fold_left
                (fun sts (_, a) ->
                  match tracked_ident sts a with
                  | Some x -> if param_escape then mark_safe env x sts else sts
                  | None -> walk env sts a)
                sts args
            in
            if env.may_raise.(callee) then may_raise_event env ~loc sts
            else sts
        | None ->
            (* Unknown callee: assume it keeps what it is handed. *)
            List.fold_left
              (fun sts (_, a) ->
                match tracked_ident sts a with
                | Some x -> mark_safe env x sts
                | None -> walk env sts a)
              sts args
      end

and expr_mentions e nm =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident x; _ } when String.equal x nm ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  !found

let run_walker ~model ~may_raise ~escapes (d : Model.def) ~names cont =
  let env =
    {
      model;
      def = d;
      may_raise;
      escapes;
      ever_safe = Hashtbl.create 4;
      ever_leaky = Hashtbl.create 4;
    }
  in
  let sts =
    List.fold_left (fun m nm -> SM.add nm { safe = false } m) SM.empty names
  in
  ignore (walk env sts cont);
  ( (fun nm -> Hashtbl.mem env.ever_safe nm),
    fun nm -> Hashtbl.mem env.ever_leaky nm )

(* ------------------------------------------------------------------ *)
(* Parameter-escape summaries *)

let params_and_body (d : Model.def) =
  match d.Model.d_body.pexp_desc with
  | Pexp_function (params, _, Pfunction_body b) ->
      (Lint_ast.param_vars params [], Some b)
  | _ -> ([], None)

(* A definition's parameters "escape" when its body releases,
   transfers or guards them: callers handing a tracked handle to it
   have discharged the obligation. Computed to fixpoint because escape
   flows through calls (f passes its parameter to g which stores it). *)
let escape_summary (model : Model.t) ~may_raise =
  let n = Array.length model.Model.defs in
  let escapes = Array.make n false in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    Array.iter
      (fun (d : Model.def) ->
        if not escapes.(d.Model.d_index) then
          match params_and_body d with
          | params, Some body when params <> [] ->
              let safe, _ =
                run_walker ~model ~may_raise ~escapes d ~names:params body
              in
              if List.exists safe params then begin
                escapes.(d.Model.d_index) <- true;
                changed := true
              end
          | _ -> ())
      model.Model.defs
  done;
  escapes

(* ------------------------------------------------------------------ *)
(* Acquisition sites *)

type acq = {
  a_names : string list;
  a_cont : expression;
  a_loc : Location.t;
  a_prim : string;
}

let acquisitions_of_body body =
  let out = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_let (_, vbs, cont) ->
            List.iter
              (fun vb ->
                match acquisition_of vb.pvb_expr with
                | Some prim ->
                    let rec vars p =
                      match p.ppat_desc with
                      | Ppat_var v -> Some [ v.txt ]
                      | Ppat_constraint (p, _) -> vars p
                      | Ppat_tuple ps ->
                          let each =
                            List.map
                              (fun p ->
                                match p.ppat_desc with
                                | Ppat_var v -> Some v.txt
                                | _ -> None)
                              ps
                          in
                          if List.for_all Option.is_some each then
                            Some (List.filter_map Fun.id each)
                          else None
                      | _ -> None
                    in
                    Option.iter
                      (fun names ->
                        out :=
                          {
                            a_names = names;
                            a_cont = cont;
                            a_loc = vb.pvb_expr.pexp_loc;
                            a_prim = prim;
                          }
                          :: !out)
                      (vars vb.pvb_pat)
                | None -> ())
              vbs
        | Pexp_match (scrut, cases) -> (
            match acquisition_of scrut with
            | None -> ()
            | Some prim ->
                List.iter
              (fun c ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception _ -> ()
                | _ ->
                    let names = Lint_ast.pattern_vars c.pc_lhs [] in
                    if names <> [] then
                      out :=
                        {
                          a_names = names;
                          a_cont = c.pc_rhs;
                          a_loc = scrut.pexp_loc;
                          a_prim = prim;
                        }
                        :: !out)
                  cases)
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  List.rev !out

(* ------------------------------------------------------------------ *)

let check (model : Model.t) =
  let may_raise = may_raise_summary model in
  let escapes = escape_summary model ~may_raise in
  let findings = ref [] in
  Array.iter
    (fun (d : Model.def) ->
      let u = d.Model.d_unit in
      if u.Model.u_ctx.Lint_ctx.in_lib then
        List.iter
          (fun acq ->
            if
              not
                (Model.allowed model ~rule:name ~u
                   ~cnum:acq.a_loc.loc_start.pos_cnum)
            then begin
              let safe, leaky =
                run_walker ~model ~may_raise ~escapes d ~names:acq.a_names
                  acq.a_cont
              in
              List.iter
                (fun nm ->
                  if not (safe nm) then
                    findings :=
                      Finding.make ~rule:name ~loc:acq.a_loc
                        ~message:
                          (Printf.sprintf
                             "%s acquired by %s in %s is never closed, \
                              transferred, or guarded"
                             nm acq.a_prim d.Model.d_qual)
                        ()
                      :: !findings
                  else if leaky nm then
                    findings :=
                      Finding.make ~rule:name ~loc:acq.a_loc
                        ~message:
                          (Printf.sprintf
                             "%s acquired by %s in %s leaks if an exception \
                              is raised before its close/transfer (wrap in \
                              Fun.protect or add a match ... exception \
                              branch that closes it)"
                             nm acq.a_prim d.Model.d_qual)
                        ()
                      :: !findings)
                acq.a_names
            end)
          (acquisitions_of_body d.Model.d_body))
    model.Model.defs;
  List.sort Finding.compare !findings

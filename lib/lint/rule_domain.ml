(* domain-discipline: a heuristic race detector for units that call
   [Domain.spawn]. Worker closures may share state across domains only
   through [Atomic] and immutable data; the rule flags syntactic
   mutation (or racy access) of captured mutable state inside a worker
   body:

   - [x := e], [!x], [incr x], [decr x] on a ref bound outside the worker
   - [x.(i) <- e] / [Array.set x ...] / [Bytes.set x ...] / [fill] on a
     captured array or bytes buffer
   - [x.f <- e] mutable-field writes on captured values
   - Hashtbl/Queue/Stack/Buffer operations whose subject is captured
     (these structures are not domain-safe)

   Worker bodies are found two ways: a [fun]-expression passed directly
   to [Domain.spawn], and — because workers are usually named, as in
   [Domain.spawn (worker (i + 1))] — any [let]-bound function whose
   name occurs free in a spawn argument. [Atomic.*] is always
   allowed. *)

open Ppxlib

let name = "domain"

let doc =
  "In units calling Domain.spawn: worker closures must not mutate or \
   read non-Atomic mutable state captured from the enclosing scope."

module S = Set.Make (String)

(* Shared-structure modules whose every operation on a captured subject
   is a race. First-argument subject covers the Stdlib signatures. *)
let shared_modules = [ "Hashtbl"; "Queue"; "Stack"; "Buffer" ]
let mutator_fns = [ "set"; "unsafe_set"; "fill"; "blit" ]

let check (_ctx : Lint_ctx.t) (str : structure) =
  let out = ref [] in
  let flag loc message = out := Finding.make ~rule:name ~loc ~message () :: !out in
  (* Pass 1: expressions passed to Domain.spawn, and the names free in
     them (so [Domain.spawn (worker i)] pulls in the binding of
     [worker]). *)
  let spawn_args = ref [] in
  let spawn_names = ref S.empty in
  let collect_names e =
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_ident { txt = Lident n; _ } ->
              spawn_names := S.add n !spawn_names
          | _ -> ());
          super#expression e
      end
    in
    it#expression e
  in
  let pass1 =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply (f, args)
          when (match Lint_ast.expr_ident f with
               | Some lid -> Lint_ast.lid_ends lid [ "Domain"; "spawn" ]
               | None -> false) ->
            List.iter
              (fun (_, a) ->
                spawn_args := a :: !spawn_args;
                collect_names a)
              args
        | _ -> ());
        super#expression e
    end
  in
  pass1#structure str;
  if !spawn_args = [] then []
  else begin
    let free bound n = not (S.mem n bound) in
    let pat_vars bound p = S.union bound (S.of_list (Lint_ast.pattern_vars p [])) in
    let subject_of args =
      match args with
      | (_, a) :: _ -> (
          match a.pexp_desc with
          | Pexp_ident { txt = Lident n; _ } -> Some n
          | _ -> None)
      | [] -> None
    in
    (* Free-variable analysis of a worker body: walk with the set of
       locally-bound names; flag mutation patterns whose subject is not
       in the set. *)
    let rec walk bound e =
      match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; pexp_loc = loc; _ }, args)
        ->
          let flag_subject kind =
            match subject_of args with
            | Some n when free bound n ->
                flag loc
                  (Printf.sprintf
                     "%s on %S captured from outside the worker closure; \
                      share state through Atomic or give each domain its own \
                      copy"
                     kind n)
            | _ -> ()
          in
          (match Lint_ast.flatten_lid lid with
          | [ (":=" | "!" | "incr" | "decr") ] -> flag_subject "ref operation"
          | _
            when List.exists
                   (fun m ->
                     Lint_ast.lid_is_module_fn lid ~modname:m ~fn:(fun f ->
                         List.mem f mutator_fns))
                   [ "Array"; "Bytes" ] ->
              flag_subject "in-place write"
          | _
            when List.exists
                   (fun m ->
                     Lint_ast.lid_is_module_fn lid ~modname:m ~fn:(fun _ ->
                         true))
                   shared_modules ->
              flag_subject "non-domain-safe shared-structure operation"
          | _ -> ());
          List.iter (fun (_, a) -> walk bound a) args
      | Pexp_setfield
          (({ pexp_desc = Pexp_ident { txt = Lident n; _ }; _ } as r), _, v) ->
          if free bound n then
            flag e.pexp_loc
              (Printf.sprintf
                 "mutable field write on %S captured from outside the worker \
                  closure; share state through Atomic or give each domain its \
                  own copy"
                 n);
          walk bound r;
          walk bound v
      | Pexp_let (rf, vbs, body) ->
          let bound' =
            List.fold_left (fun acc vb -> pat_vars acc vb.pvb_pat) bound vbs
          in
          let in_bindings =
            match rf with Recursive -> bound' | Nonrecursive -> bound
          in
          List.iter (fun vb -> walk in_bindings vb.pvb_expr) vbs;
          walk bound' body
      | Pexp_function (params, _, fbody) -> (
          let bound' =
            S.union bound (S.of_list (Lint_ast.param_vars params []))
          in
          List.iter
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, Some default, _) -> walk bound default
              | Pparam_val (_, None, _) | Pparam_newtype _ -> ())
            params;
          match fbody with
          | Pfunction_body b -> walk bound' b
          | Pfunction_cases (cases, _, _) -> walk_cases bound' cases)
      | Pexp_match (scrut, cases) ->
          walk bound scrut;
          walk_cases bound cases
      | Pexp_try (body, cases) ->
          walk bound body;
          walk_cases bound cases
      | Pexp_for (pat, lo, hi, _, body) ->
          walk bound lo;
          walk bound hi;
          walk (pat_vars bound pat) body
      | Pexp_letop { let_; ands; body } ->
          walk bound let_.pbop_exp;
          List.iter (fun a -> walk bound a.pbop_exp) ands;
          let bound' =
            List.fold_left
              (fun acc b -> pat_vars acc b.pbop_pat)
              (pat_vars bound let_.pbop_pat)
              ands
          in
          walk bound' body
      | Pexp_ident _ | Pexp_constant _ | Pexp_new _ | Pexp_extension _
      | Pexp_unreachable | Pexp_object _ | Pexp_pack _ ->
          ()
      | Pexp_apply (f, args) ->
          walk bound f;
          List.iter (fun (_, a) -> walk bound a) args
      | Pexp_tuple es | Pexp_array es -> List.iter (walk bound) es
      | Pexp_construct (_, eo) | Pexp_variant (_, eo) ->
          Option.iter (walk bound) eo
      | Pexp_record (fields, base) ->
          List.iter (fun (_, v) -> walk bound v) fields;
          Option.iter (walk bound) base
      | Pexp_field (e, _)
      | Pexp_send (e, _)
      | Pexp_assert e
      | Pexp_lazy e
      | Pexp_constraint (e, _)
      | Pexp_coerce (e, _, _)
      | Pexp_newtype (_, e)
      | Pexp_setinstvar (_, e)
      | Pexp_open (_, e)
      | Pexp_poly (e, _)
      | Pexp_letmodule (_, _, e)
      | Pexp_letexception (_, e) ->
          walk bound e
      | Pexp_setfield (r, _, v) ->
          walk bound r;
          walk bound v
      | Pexp_sequence (a, b) | Pexp_while (a, b) ->
          walk bound a;
          walk bound b
      | Pexp_ifthenelse (c, t, eo) ->
          walk bound c;
          walk bound t;
          Option.iter (walk bound) eo
      | Pexp_override fields -> List.iter (fun (_, v) -> walk bound v) fields
    and walk_cases bound cases =
      List.iter
        (fun c ->
          let bound' = pat_vars bound c.pc_lhs in
          Option.iter (walk bound') c.pc_guard;
          walk bound' c.pc_rhs)
        cases
    in
    (* Direct fun-arguments to spawn. *)
    List.iter
      (fun a ->
        match a.pexp_desc with
        | Pexp_function (params, _, Pfunction_body body) ->
            walk (S.of_list (Lint_ast.param_vars params [])) body
        | Pexp_function (params, _, Pfunction_cases (cases, _, _)) ->
            walk_cases (S.of_list (Lint_ast.param_vars params [])) cases
        | _ -> ())
      !spawn_args;
    (* Let-bound functions whose name is referenced from a spawn
       argument. *)
    let pass2 =
      object
        inherit Ast_traverse.iter as super

        method! value_binding vb =
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = n; _ } when S.mem n !spawn_names -> (
              match vb.pvb_expr.pexp_desc with
              | Pexp_function (params, _, Pfunction_body body) ->
                  walk (S.add n (S.of_list (Lint_ast.param_vars params []))) body
              | Pexp_function (params, _, Pfunction_cases (cases, _, _)) ->
                  walk_cases
                    (S.add n (S.of_list (Lint_ast.param_vars params [])))
                    cases
              | _ -> ())
          | _ -> ());
          super#value_binding vb
      end
    in
    pass2#structure str;
    !out
  end

let rule = { Rule.name; doc; check }

(* determinism: simulator runs must be bit-identical under a seeded
   [Prng]. In lib/core, lib/broker and lib/store_log this forbids the
   global [Random] generator, wall-clock reads, and
   hash-order-dependent traversal of hashtables
   ([Hashtbl.iter]/[Hashtbl.fold] — iteration order depends on the
   hash function and table history, not on program logic).
   lib/store_log is in scope deliberately: a WAL frame's bytes are
   part of the replay contract, so nondeterminism there corrupts
   recovery equivalence, not just metrics. Order-insensitive folds
   (counts, existence checks, collect-then-sort) carry an
   [\[@problint.allow determinism "..."\]] annotation saying why —
   audited per use, never exempted by path. *)

open Ppxlib

let name = "determinism"

let doc =
  "Forbid Random.*, Sys.time, Unix.gettimeofday and \
   Hashtbl.iter/fold in lib/core, lib/broker and lib/store_log; use \
   the seeded Prng and sorted iteration instead."

let check (ctx : Lint_ctx.t) (str : structure) =
  if not ctx.core_or_broker then []
  else begin
    let out = ref [] in
    let flag loc message =
      out := Finding.make ~rule:name ~loc ~message () :: !out
    in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_ident { txt = lid; loc } -> (
              let parts = Lint_ast.flatten_lid lid in
              (* [Random] as a module component anywhere on the path:
                 Random.int, Random.State.int, Stdlib.Random.bool, ... *)
              let uses_random =
                match List.rev parts with
                | _fn :: modules -> List.mem "Random" modules
                | [] -> false
              in
              if uses_random then
                flag loc
                  "global Random generator; draw from the seeded Prng \
                   instead (simulator runs must be reproducible)"
              else if Lint_ast.lid_ends lid [ "Sys"; "time" ] then
                flag loc
                  "Sys.time reads the wall clock; simulated time must come \
                   from the event queue"
              else if Lint_ast.lid_ends lid [ "Unix"; "gettimeofday" ] then
                flag loc
                  "Unix.gettimeofday reads the wall clock; simulated time \
                   must come from the event queue"
              else if
                Lint_ast.lid_ends lid [ "Hashtbl"; "iter" ]
                || Lint_ast.lid_ends lid [ "Hashtbl"; "fold" ]
              then
                flag loc
                  "hash-order-dependent Hashtbl traversal; iterate in a \
                   sorted/keyed order, or annotate with [@problint.allow \
                   determinism \"...\"] if the accumulation is \
                   order-insensitive")
          | _ -> ());
          super#expression e
      end
    in
    it#structure str;
    !out
  end

let rule = { Rule.name; doc; check }

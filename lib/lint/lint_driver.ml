(* The two-phase analysis driver.

   Phase 1 walks the source directories, parses every [.ml] with
   ppxlib's parser, and builds the whole-repo [Model] (module table,
   definitions, call graph, suppression scopes).

   Phase 2 runs the five per-file syntactic rules on each unit and the
   three interprocedural passes on the model, applies suppression
   scopes globally (recording which scopes earned their keep), appends
   suppression-hygiene findings, and finally reports every well-formed
   allow annotation that suppressed nothing in the run — suppressions
   must not rot as the code under them changes.

   Exit status 0 means the tree is clean (every finding either fixed
   or suppressed with a written reason). *)

type result = {
  findings : Finding.t list;
  suppressed : int;
  scopes : int;  (** total [@problint.allow] annotations seen (CI budget) *)
  files_scanned : int;
}

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Ppxlib.Parse.implementation lexbuf)

(* A parse failure reports the real syntax-error position when the
   exception carries one (ppxlib wraps compiler syntax errors in a
   located error); the fallback is the top of the file. *)
let parse_failure_finding path exn =
  let loc, message =
    match Ppxlib.Location.Error.of_exn exn with
    | Some err ->
        ( Ppxlib.Location.Error.get_location err,
          Ppxlib.Location.Error.message err )
    | None ->
        ( { Ppxlib.Location.none with
            loc_start = { pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
          },
          Printexc.to_string exn )
  in
  let loc =
    (* The error location may come from the lexbuf with the right
       position but no filename, or vice versa; force the display path. *)
    { loc with
      Ppxlib.Location.loc_start = { loc.Ppxlib.Location.loc_start with pos_fname = path }
    }
  in
  Finding.make ~rule:"parse" ~loc ~message ()

(* Skip build artifacts and hidden directories; scan only [.ml]
   implementations (interfaces contain no expressions). *)
let skip_dir name =
  String.equal name "_build" || (String.length name > 0 && name.[0] = '.')

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc else walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let load_unit path =
  match parse_file path with
  | str ->
      let collected = Suppress.collect str in
      let ctx = Lint_ctx.classify ~file:path in
      let ctx =
        { ctx with Lint_ctx.hot = ctx.Lint_ctx.hot || collected.Suppress.hot }
      in
      Ok
        {
          Model.u_file = path;
          u_module = Model.module_name_of_file path;
          u_ctx = ctx;
          u_str = str;
          u_collected = collected;
          u_aliases = Model.aliases_of str;
        }
  | exception exn -> Error (parse_failure_finding path exn)

(* Apply suppression scopes to a finding batch, marking every scope
   that suppresses something as used in the model's ledger. *)
let apply_suppressions (model : Model.t) by_file findings =
  let suppressed = ref 0 in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        match Hashtbl.find_opt by_file f.Finding.file with
        | None -> true
        | Some (collected : Suppress.collected) -> (
            match
              List.find_opt
                (fun s -> Suppress.suppresses s f)
                collected.Suppress.scopes
            with
            | Some s ->
                Model.mark_used model s;
                incr suppressed;
                false
            | None -> true))
      findings
  in
  (kept, !suppressed)

let run ~paths =
  let files = List.rev (List.fold_left (fun acc p -> walk p acc) [] paths) in
  let units, parse_findings =
    List.fold_left
      (fun (us, pf) file ->
        match load_unit file with
        | Ok u -> (u :: us, pf)
        | Error f -> (us, f :: pf))
      ([], []) files
  in
  let units = List.rev units in
  let model = Model.build units in
  let by_file = Hashtbl.create 64 in
  List.iter
    (fun (u : Model.unit_info) ->
      Hashtbl.replace by_file u.Model.u_file u.Model.u_collected)
    units;
  let syntactic =
    List.concat_map
      (fun (u : Model.unit_info) ->
        List.concat_map
          (fun (r : Rule.t) -> r.check u.Model.u_ctx u.Model.u_str)
          Registry.rules)
      units
  in
  let interprocedural =
    List.concat_map (fun (p : Pass.t) -> p.Pass.check model) Registry.passes
  in
  let kept, suppressed =
    apply_suppressions model by_file (syntactic @ interprocedural)
  in
  let hygiene =
    List.concat_map
      (fun (u : Model.unit_info) ->
        Registry.hygiene_findings u.Model.u_collected)
      units
  in
  let unused =
    List.concat_map
      (fun (u : Model.unit_info) ->
        List.filter_map
          (fun (s : Suppress.scope) ->
            if Registry.scope_well_formed s && not (Model.scope_used model s)
            then Some (Registry.unused_finding s)
            else None)
          u.Model.u_collected.Suppress.scopes)
      units
  in
  let scopes =
    List.fold_left
      (fun n (u : Model.unit_info) ->
        n + List.length u.Model.u_collected.Suppress.scopes)
      0 units
  in
  {
    findings =
      List.sort Finding.compare (parse_findings @ kept @ hygiene @ unused);
    suppressed;
    scopes;
    files_scanned = List.length files;
  }

let list_rules () =
  String.concat ""
    (List.map
       (fun (r : Rule.t) -> Printf.sprintf "%-12s %s\n" r.name r.doc)
       Registry.rules
    @ List.map
        (fun (p : Pass.t) ->
          Printf.sprintf "%-12s %s\n" p.Pass.name p.Pass.doc)
        Registry.passes)

(* CLI entry shared with bin/problint.ml. *)
let main argv =
  let json = ref false in
  let list = ref false in
  let paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--list-rules" -> list := true
        | _ -> paths := arg :: !paths)
    argv;
  if !list then begin
    print_string (list_rules ());
    0
  end
  else begin
    let paths =
      match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
    in
    let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
    match missing with
    | p :: _ ->
        Printf.eprintf "problint: no such file or directory: %s\n" p;
        2
    | [] ->
        let r = run ~paths in
        if !json then
          print_string
            (Finding.report_json ~suppressed:r.suppressed ~scopes:r.scopes
               r.findings)
        else begin
          print_string (Finding.report_text r.findings);
          Printf.printf
            "problint: %d finding%s (%d suppressed, %d scopes) in %d file%s\n"
            (List.length r.findings)
            (if List.length r.findings = 1 then "" else "s")
            r.suppressed r.scopes r.files_scanned
            (if r.files_scanned = 1 then "" else "s")
        end;
        if r.findings = [] then 0 else 1
  end

(* The analysis driver: walk source directories, parse every [.ml]
   with ppxlib's parser, run the registry, and report. Exit status 0
   means the tree is clean (every finding either fixed or suppressed
   with a written reason). *)

type result = {
  findings : Finding.t list;
  suppressed : int;
  files_scanned : int;
}

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Ppxlib.Parse.implementation lexbuf)

let check_file path =
  match parse_file path with
  | str ->
      let ctx = Lint_ctx.classify ~file:path in
      Registry.check_structure ctx str
  | exception exn ->
      ( [
          {
            Finding.rule = "parse";
            file = path;
            line = 1;
            col = 0;
            cnum = 0;
            message = Printexc.to_string exn;
          };
        ],
        0 )

(* Skip build artifacts and hidden directories; scan only [.ml]
   implementations (interfaces contain no expressions). *)
let skip_dir name =
  String.equal name "_build" || (String.length name > 0 && name.[0] = '.')

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc else walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run ~paths =
  let files = List.rev (List.fold_left (fun acc p -> walk p acc) [] paths) in
  let findings, suppressed =
    List.fold_left
      (fun (fs, sup) file ->
        let f, s = check_file file in
        (f @ fs, sup + s))
      ([], 0) files
  in
  {
    findings = List.sort Finding.compare findings;
    suppressed;
    files_scanned = List.length files;
  }

let list_rules () =
  String.concat ""
    (List.map
       (fun (r : Rule.t) -> Printf.sprintf "%-12s %s\n" r.name r.doc)
       Registry.all)

(* CLI entry shared with bin/problint.ml. *)
let main argv =
  let json = ref false in
  let list = ref false in
  let paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--list-rules" -> list := true
        | _ -> paths := arg :: !paths)
    argv;
  if !list then begin
    print_string (list_rules ());
    0
  end
  else begin
    let paths =
      match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
    in
    let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
    match missing with
    | p :: _ ->
        Printf.eprintf "problint: no such file or directory: %s\n" p;
        2
    | [] ->
        let r = run ~paths in
        if !json then print_string (Finding.report_json ~suppressed:r.suppressed r.findings)
        else begin
          print_string (Finding.report_text r.findings);
          Printf.printf
            "problint: %d finding%s (%d suppressed) in %d file%s\n"
            (List.length r.findings)
            (if List.length r.findings = 1 then "" else "s")
            r.suppressed r.files_scanned
            (if r.files_scanned = 1 then "" else "s")
        end;
        if r.findings = [] then 0 else 1
  end

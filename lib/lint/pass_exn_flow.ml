(* Interprocedural exception flow.

   Seeds are raising expressions (see [Summary.raise_seeds]): partial
   primitives, [raise] of a named repo exception, and [Hashtbl.find].
   Seeds propagate caller-ward along unabsorbed call edges; a finding
   is emitted at the *entry point* — a definition in the
   determinism-critical scope (lib/core, lib/broker, lib/server) that
   can reach the seed — with the full call chain down to the raising
   expression.

   One finding per seed: the entry at minimal chain depth (ties broken
   by qualified name) speaks for all entries that reach the seed, which
   keeps a single partial helper from flooding the report through every
   caller. Partial-primitive seeds only report at depth >= 2 — at depth
   1 (the seed's own definition) the syntactic partiality rule already
   owns the diagnosis, and this pass exists for what that rule cannot
   see. Named raises and [Hashtbl.find] report at any depth: they are
   invisible to the syntactic rules entirely.

   The WAL layer (lib/store_log) is excluded from entry points: its
   typed [Bad]-exception decode contract is absorbed at the recovery
   boundary and is audited by its own tests. *)

let name = "exn_flow"

let doc =
  "a raising expression (failwith, assert false, Option.get, raise of a \
   typed exception, Hashtbl.find) is reachable from lib/core / lib/broker \
   / lib/server through the call graph; the finding carries the full call \
   chain"

let is_entry (d : Model.def) =
  let ctx = d.Model.d_unit.Model.u_ctx in
  ctx.Lint_ctx.core_or_broker
  && not (Lint_ctx.contains_seg ctx.Lint_ctx.file "lib/store_log")

let min_depth_report prop ~candidates =
  (* candidates: (seed key, def index, reach) for entry defs only;
     keep, per seed, the entry with the smallest depth. *)
  let best = Hashtbl.create 32 in
  List.iter
    (fun (key, def, (r : Summary.reach), qual) ->
      match Hashtbl.find_opt best key with
      | Some (_, r', qual')
        when r'.Summary.r_depth < r.Summary.r_depth
             || (r'.Summary.r_depth = r.Summary.r_depth
                && String.compare qual' qual <= 0) ->
          ()
      | _ -> Hashtbl.replace best key (def, r, qual))
    candidates;
  ignore prop;
  Hashtbl.fold (fun key (def, r, _) acc -> (key, def, r) :: acc) best []

let check (model : Model.t) =
  let prop =
    Summary.propagate model
      ~own_seeds:(fun d -> Summary.raise_seeds model d)
      ~respect_absorption:true
  in
  let candidates = ref [] in
  Array.iter
    (fun (d : Model.def) ->
      if is_entry d then
        List.iter
          (fun (key, (r : Summary.reach)) ->
            let seed = Hashtbl.find prop.Summary.seeds key in
            let deep_enough =
              match seed.Summary.sd_kind with
              | "partial" -> r.Summary.r_depth >= 2
              | _ -> r.Summary.r_depth >= 1
            in
            if deep_enough then
              candidates :=
                (key, d.Model.d_index, r, d.Model.d_qual) :: !candidates)
          (Summary.reaches_of prop ~def:d.Model.d_index))
    model.Model.defs;
  let reported = min_depth_report prop ~candidates:!candidates in
  List.map
    (fun (key, def, (r : Summary.reach)) ->
      let seed = Hashtbl.find prop.Summary.seeds key in
      let d = model.Model.defs.(def) in
      let chain = Summary.chain model prop ~def ~key in
      let message =
        Printf.sprintf "%s can raise: %s at %s:%d (%d-step chain)"
          d.Model.d_qual seed.Summary.sd_desc
          seed.Summary.sd_loc.loc_start.pos_fname
          seed.Summary.sd_loc.loc_start.pos_lnum r.Summary.r_depth
      in
      Finding.make ~chain ~rule:name ~loc:d.Model.d_loc ~message ())
    reported
  |> List.sort Finding.compare

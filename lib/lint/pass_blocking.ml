(* Event-loop blocking taint.

   Roots are the top-level definitions of every module that carries a
   floating [\[@@@problint.event_loop\]] attribute (the select loop in
   Broker_server and the per-connection handlers in Conn). Seeds are
   blocking primitives (see [Summary.blocking_seeds]): sleeps,
   synchronous waits, [Unix.connect], wall-clock reads outside [Clock],
   stdout/stderr formatting, channel I/O, and raw fd I/O in modules
   that never establish the [Unix.set_nonblock] discipline.

   Blocking propagates through every call edge — absorption is
   irrelevant, catching an exception does not unblock a syscall. One
   finding per seed, at the root with the shortest chain: a blocking
   primitive stalls every connection on the loop regardless of how many
   roots can reach it. *)

let name = "blocking"

let doc =
  "a blocking primitive (sleep, connect, wall-clock read outside Clock, \
   stdout formatting, channel or raw-fd I/O without the set_nonblock \
   discipline) is reachable from an [@@@problint.event_loop] module"

let is_root (d : Model.def) =
  d.Model.d_unit.Model.u_collected.Suppress.event_loop

let check (model : Model.t) =
  let prop =
    Summary.propagate model
      ~own_seeds:(fun d -> Summary.blocking_seeds model d)
      ~respect_absorption:false
  in
  let best = Hashtbl.create 32 in
  Array.iter
    (fun (d : Model.def) ->
      if is_root d then
        List.iter
          (fun (key, (r : Summary.reach)) ->
            match Hashtbl.find_opt best key with
            | Some (_, (r' : Summary.reach), qual')
              when r'.Summary.r_depth < r.Summary.r_depth
                   || (r'.Summary.r_depth = r.Summary.r_depth
                      && String.compare qual' d.Model.d_qual <= 0) ->
                ()
            | _ ->
                Hashtbl.replace best key
                  (d.Model.d_index, r, d.Model.d_qual))
          (Summary.reaches_of prop ~def:d.Model.d_index))
    model.Model.defs;
  Hashtbl.fold
    (fun key (def, (r : Summary.reach), _) acc ->
      let seed = Hashtbl.find prop.Summary.seeds key in
      let d = model.Model.defs.(def) in
      let chain = Summary.chain model prop ~def ~key in
      let message =
        Printf.sprintf
          "event-loop root %s can block: %s at %s:%d (%d-step chain)"
          d.Model.d_qual seed.Summary.sd_desc
          seed.Summary.sd_loc.loc_start.pos_fname
          seed.Summary.sd_loc.loc_start.pos_lnum r.Summary.r_depth
      in
      Finding.make ~chain ~rule:name ~loc:d.Model.d_loc ~message () :: acc)
    best []
  |> List.sort Finding.compare

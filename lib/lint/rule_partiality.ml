(* partiality: library code must not fail with anonymous runtime
   exceptions. [failwith], [assert false], [Option.get] and [List.hd]
   in lib/ either become typed errors / [invalid_arg] with context, or
   carry an [\[@problint.allow partiality "..."\]] annotation proving
   the invariant locally. *)

open Ppxlib

let name = "partiality"

let doc =
  "failwith, assert false, Option.get and List.hd in lib/ without an \
   allow annotation."

let check (ctx : Lint_ctx.t) (str : structure) =
  if not ctx.in_lib then []
  else begin
    let out = ref [] in
    let flag loc message =
      out := Finding.make ~rule:name ~loc ~message () :: !out
    in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_assert
              {
                pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None);
                _;
              } ->
              flag e.pexp_loc
                "assert false carries no context; raise \
                 invalid_arg/typed error with a message, or prove the \
                 invariant in an allow annotation"
          | Pexp_ident { txt = lid; loc } ->
              if Lint_ast.lid_ends lid [ "failwith" ] then
                flag loc
                  "failwith raises an anonymous Failure; use a typed error \
                   or invalid_arg with context"
              else if Lint_ast.lid_ends lid [ "Option"; "get" ] then
                flag loc
                  "Option.get raises on None with no context; match \
                   explicitly"
              else if Lint_ast.lid_ends lid [ "List"; "hd" ] then
                flag loc
                  "List.hd raises on [] with no context; match explicitly"
          | _ -> ());
          super#expression e
      end
    in
    it#structure str;
    !out
  end

let rule = { Rule.name; doc; check }

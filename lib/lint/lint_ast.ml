(* Shared AST helpers for the rules: longident matching, identifier
   heads of applications, and pattern-variable collection. *)

open Ppxlib

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Ldot (l, s) -> flatten_lid l @ [ s ]
  | Lapply _ -> []

(* [lid_ends lid ["Hashtbl"; "iter"]] matches [Hashtbl.iter],
   [Stdlib.Hashtbl.iter], [MoreLabels.Hashtbl.iter], ... — any path
   whose trailing components equal the suffix. *)
let lid_ends lid suffix =
  let parts = flatten_lid lid in
  let np = List.length parts and ns = List.length suffix in
  if np < ns then false
  else
    let rec drop n l =
      if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
    in
    List.equal String.equal (drop (np - ns) parts) suffix

(* The qualified call [M.f] where the last module component is [modname]
   and the function component satisfies [fn]. *)
let lid_is_module_fn lid ~modname ~fn =
  match List.rev (flatten_lid lid) with
  | f :: m :: _ -> String.equal m modname && fn f
  | _ -> false

let expr_ident e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* [Some (lid, args)] when [e] is an application whose head is a plain
   identifier. *)
let apply_head e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match expr_ident f with Some lid -> Some (lid, args) | None -> None)
  | _ -> None

let rec pattern_vars p acc =
  match p.ppat_desc with
  | Ppat_var v -> v.txt :: acc
  | Ppat_alias (p, v) -> pattern_vars p (v.txt :: acc)
  | Ppat_tuple ps -> List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Ppat_construct (_, Some (_, p)) -> pattern_vars p acc
  | Ppat_variant (_, Some p) -> pattern_vars p acc
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_vars p acc) acc fields
  | Ppat_array ps -> List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Ppat_or (a, b) -> pattern_vars a (pattern_vars b acc)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_open (_, p)
  | Ppat_exception p ->
      pattern_vars p acc
  | Ppat_any | Ppat_constant _ | Ppat_interval _ | Ppat_construct (_, None)
  | Ppat_variant (_, None)
  | Ppat_type _ | Ppat_unpack _ | Ppat_extension _ ->
      acc

(* Variables bound by the parameter list of a [Pexp_function]. *)
let param_vars params acc =
  List.fold_left
    (fun acc param ->
      match param.pparam_desc with
      | Pparam_val (_, _, p) -> pattern_vars p acc
      | Pparam_newtype _ -> acc)
    acc params

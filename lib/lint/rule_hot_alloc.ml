(* hot-path-alloc: inside [\[@@@problint.hot\]] modules (the flat RSPC
   kernels, the Prng), loop bodies must not allocate — the 2.4x win of
   the packed trial loop is exactly the absence of minor-heap traffic.
   The rule flags syntactically-allocating constructs in [for]/[while]
   bodies: closure creation, tuples, records, array/list literals,
   constructor applications (including [::] and [Some]), [ref], and
   the allocating Array/List/String/Bytes functions. Allocation that
   is genuinely off the trial path (index builds, witness copies on
   the exit path) carries an allow annotation. *)

open Ppxlib

let name = "hot_alloc"

let doc =
  "Allocating constructs in for/while loop bodies of [@@@problint.hot] \
   modules: closures, tuples, records, constructor applications, \
   array/list literals, ref, Array.copy/append/make/init/sub, List \
   producers, String/Bytes builders."

let alloc_fns_array =
  [ "copy"; "append"; "make"; "init"; "sub"; "concat"; "of_list"; "to_list" ]

let alloc_fns_list =
  [
    "map"; "mapi"; "map2"; "filter"; "filter_map"; "init"; "append"; "concat";
    "rev"; "rev_append"; "sort"; "stable_sort"; "fast_sort"; "merge"; "split";
    "combine"; "of_seq";
  ]

let alloc_fns_string = [ "make"; "init"; "sub"; "concat"; "cat"; "copy" ]
let alloc_fns_bytes = [ "make"; "create"; "init"; "sub"; "copy"; "extend" ]

let allocating_apply lid =
  let in_mod m fns = Lint_ast.lid_is_module_fn lid ~modname:m ~fn:(fun f -> List.mem f fns) in
  in_mod "Array" alloc_fns_array
  || in_mod "List" alloc_fns_list
  || in_mod "String" alloc_fns_string
  || in_mod "Bytes" alloc_fns_bytes
(* [ref] is deliberately absent: classic ocamlopt compiles a
   non-escaping local ref to a mutable variable (the Prng rejection
   loop and the Flat scan counters rely on this), so a syntactic [ref]
   in a loop body is usually free. Escaping refs show up through the
   closures that capture them. *)

let check (ctx : Lint_ctx.t) (str : structure) =
  if not ctx.hot then []
  else begin
    let out = ref [] in
    let depth = ref 0 in
    let flag loc message =
      out := Finding.make ~rule:name ~loc ~message () :: !out
    in
    let check_alloc e =
      match e.pexp_desc with
      | Pexp_function _ -> flag e.pexp_loc "closure created in a hot loop"
      | Pexp_tuple _ -> flag e.pexp_loc "tuple allocated in a hot loop"
      | Pexp_record _ -> flag e.pexp_loc "record allocated in a hot loop"
      | Pexp_array _ -> flag e.pexp_loc "array literal allocated in a hot loop"
      | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> ()
      | Pexp_construct ({ txt; _ }, Some _) ->
          flag e.pexp_loc
            (Printf.sprintf
               "constructor %s with payload allocates in a hot loop"
               (String.concat "." (Lint_ast.flatten_lid txt)))
      | Pexp_apply (f, _) -> (
          match Lint_ast.expr_ident f with
          | Some lid when allocating_apply lid ->
              flag f.pexp_loc
                (Printf.sprintf "%s allocates in a hot loop"
                   (String.concat "." (Lint_ast.flatten_lid lid)))
          | _ -> ())
      | _ -> ()
    in
    let it =
      object (self)
        inherit Ast_traverse.iter as super

        method! expression e =
          if !depth > 0 then check_alloc e;
          match e.pexp_desc with
          | Pexp_for (_, lo, hi, _, body) ->
              self#expression lo;
              self#expression hi;
              incr depth;
              self#expression body;
              decr depth
          | Pexp_while (cond, body) ->
              incr depth;
              self#expression cond;
              self#expression body;
              decr depth
          | _ -> super#expression e
      end
    in
    it#structure str;
    !out
  end

let rule = { Rule.name; doc; check }

(* A single diagnostic, plus the text and JSON reporters.

   Interprocedural findings carry a [chain]: the call path from the
   entry point down to the offending expression, one step per hop.
   Syntactic findings have an empty chain. The JSON report is
   versioned ([schema_version]) so downstream CI tooling can rely on
   the shape; bump it on any incompatible change. *)

type step = {
  s_name : string;  (** qualified symbol, e.g. ["Broker_server.step"] *)
  s_file : string;
  s_line : int;
  s_col : int;
}

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  cnum : int;  (** absolute character offset, used for suppression scopes *)
  message : string;
  chain : step list;
      (** entry point first, offending expression last; [] for
          per-file syntactic findings *)
}

let schema_version = 2

let step ~name ~(loc : Ppxlib.Location.t) =
  let p = loc.loc_start in
  {
    s_name = name;
    s_file = p.pos_fname;
    s_line = p.pos_lnum;
    s_col = p.pos_cnum - p.pos_bol;
  }

let make ?(chain = []) ~rule ~(loc : Ppxlib.Location.t) ~message () =
  let p = loc.loc_start in
  {
    rule;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    cnum = p.pos_cnum;
    message;
    chain;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text f =
  let head = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message in
  match f.chain with
  | [] -> head
  | chain ->
      String.concat "\n"
        (head
        :: List.mapi
             (fun i s ->
               Printf.sprintf "    %d. %s (%s:%d:%d)" (i + 1) s.s_name
                 s.s_file s.s_line s.s_col)
             chain)

(* Minimal JSON string escaping: control characters, quotes and
   backslashes; everything else passes through byte-for-byte. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let step_to_json s =
  Printf.sprintf "{ \"name\": %s, \"file\": %s, \"line\": %d, \"col\": %d }"
    (json_string s.s_name) (json_string s.s_file) s.s_line s.s_col

let to_json f =
  Printf.sprintf
    "{ \"rule\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \"message\": %s, \
     \"chain\": [%s] }"
    (json_string f.rule) (json_string f.file) f.line f.col
    (json_string f.message)
    (String.concat ", " (List.map step_to_json f.chain))

let report_text findings =
  String.concat "" (List.map (fun f -> to_text f ^ "\n") findings)

(* The versioned machine-readable report. [suppressed] counts findings
   silenced by reasoned allow annotations in this run; [scopes] counts
   the allow annotations themselves (the suppression budget CI gates
   on). *)
let report_json ~suppressed ~scopes findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema_version\": %d,\n  \"findings\": ["
       schema_version);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (to_json f))
    findings;
  if findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"count\": %d,\n  \"suppressed\": %d,\n  \"scopes\": %d\n}\n"
       (List.length findings) suppressed scopes);
  Buffer.contents buf

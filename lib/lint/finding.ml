(* A single diagnostic, plus the text and JSON reporters. *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  cnum : int;  (** absolute character offset, used for suppression scopes *)
  message : string;
}

let make ~rule ~(loc : Ppxlib.Location.t) ~message =
  let p = loc.loc_start in
  {
    rule;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    cnum = p.pos_cnum;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* Minimal JSON string escaping: control characters, quotes and
   backslashes; everything else passes through byte-for-byte. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{ \"rule\": %s, \"file\": %s, \"line\": %d, \"col\": %d, \"message\": %s \
     }"
    (json_string f.rule) (json_string f.file) f.line f.col
    (json_string f.message)

let report_text findings =
  String.concat "" (List.map (fun f -> to_text f ^ "\n") findings)

let report_json ~suppressed findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (to_json f))
    findings;
  if findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"count\": %d,\n  \"suppressed\": %d\n}\n"
       (List.length findings) suppressed);
  Buffer.contents buf

(* Per-file analysis context. The driver classifies files by path; the
   fixture tests construct contexts directly so each rule can be
   exercised on snippets that live outside the scanned tree. *)

type t = {
  file : string;  (** display path, as given to the driver *)
  core_or_broker : bool;
      (** under [lib/core], [lib/broker], [lib/store_log] or
          [lib/server]: determinism-critical code *)
  in_lib : bool;  (** under [lib/]: library code, partiality applies *)
  hot : bool;  (** file carries a floating [\[@@@problint.hot\]] attribute *)
}

let make ?(core_or_broker = false) ?(in_lib = false) ?(hot = false) ~file () =
  { file; core_or_broker; in_lib; hot }

(* Path classification for the driver: a file is determinism-critical
   when it lives under lib/core, lib/broker or lib/store_log (replaying
   a WAL must be bit-identical to the run that wrote it, so the durable
   layer is in scope — audited per-use [@problint.allow] annotations,
   never a path exemption), and library code when it lives under lib/.
   The sharded fabric (lib/core/shard_store.ml) sits squarely inside
   the core scope on purpose: its flat-store equivalence contract is a
   determinism claim, so Hashtbl-order and partiality findings there
   are never waved through by path. lib/server is in scope too, even
   though a socket server is clock-driven by nature: confining the wall
   clock to the single audited read in clock.ml is exactly the property
   the rule enforces there. Paths are the relative ones handed to the
   driver (e.g. "lib/core/flat.ml"). *)
let contains_seg path seg =
  let path = "/" ^ String.concat "/" (String.split_on_char '\\' path) ^ "/" in
  let seg = "/" ^ seg ^ "/" in
  let n = String.length path and m = String.length seg in
  let rec at i = i + m <= n && (String.sub path i m = seg || at (i + 1)) in
  at 0

let classify ~file =
  {
    file;
    core_or_broker =
      contains_seg file "lib/core"
      || contains_seg file "lib/broker"
      || contains_seg file "lib/store_log"
      || contains_seg file "lib/server";
    in_lib = contains_seg file "lib";
    hot = false (* filled in from the parsed AST by the driver *);
  }

(* The rule registry. Adding a rule = adding a module exposing
   [Rule.t] and listing it here; the driver, the fixture tests and the
   docs all read this list. *)

let all : Rule.t list =
  [
    Rule_determinism.rule;
    Rule_unsafe.rule;
    Rule_hot_alloc.rule;
    Rule_domain.rule;
    Rule_partiality.rule;
  ]

let known_rule name = List.exists (fun (r : Rule.t) -> String.equal r.name name) all

let find name =
  List.find_opt (fun (r : Rule.t) -> String.equal r.name name) all

(* Run every rule on a parsed unit, apply suppression scopes, and
   report suppression hygiene violations (missing reason, unknown rule
   name, unparseable payload) as findings of the pseudo-rule
   "suppression". *)
let check_structure (ctx : Lint_ctx.t) (str : Ppxlib.Parsetree.structure) =
  let collected = Suppress.collect str in
  let ctx = { ctx with Lint_ctx.hot = ctx.Lint_ctx.hot || collected.hot } in
  let raw =
    List.concat_map (fun (r : Rule.t) -> r.check ctx str) all
  in
  let kept, suppressed =
    List.partition
      (fun f -> not (Suppress.is_suppressed collected.scopes f))
      raw
  in
  let hygiene =
    List.filter_map
      (fun (s : Suppress.scope) ->
        if not (known_rule s.rule) then
          Some
            (Finding.make ~rule:"suppression" ~loc:s.loc
               ~message:
                 (Printf.sprintf
                    "[@problint.allow %s ...] names an unknown rule" s.rule))
        else if String.length (String.trim s.reason) = 0 then
          Some
            (Finding.make ~rule:"suppression" ~loc:s.loc
               ~message:
                 (Printf.sprintf
                    "[@problint.allow %s] must carry a written reason: \
                     [@problint.allow %s \"why this is sound\"]"
                    s.rule s.rule))
        else None)
      collected.scopes
    @ List.map
        (fun loc ->
          Finding.make ~rule:"suppression" ~loc
            ~message:
              "malformed [@problint.allow] payload; expected \
               [@problint.allow <rule> \"reason\"]")
        collected.malformed
  in
  (List.sort Finding.compare (kept @ hygiene), List.length suppressed)

(* The rule and pass registry. Adding a rule = adding a module exposing
   [Rule.t] (per-file, syntactic) or [Pass.t] (whole-repo,
   interprocedural) and listing it here; the driver, the fixture tests
   and the docs all read these lists. *)

let rules : Rule.t list =
  [
    Rule_determinism.rule;
    Rule_unsafe.rule;
    Rule_hot_alloc.rule;
    Rule_domain.rule;
    Rule_partiality.rule;
  ]

let passes : Pass.t list =
  [
    { Pass.name = Pass_exn_flow.name; doc = Pass_exn_flow.doc;
      check = Pass_exn_flow.check };
    { Pass.name = Pass_blocking.name; doc = Pass_blocking.doc;
      check = Pass_blocking.check };
    { Pass.name = Pass_resource.name; doc = Pass_resource.doc;
      check = Pass_resource.check };
  ]

(* Kept under its historical name: the per-file rule list. *)
let all = rules

let known_rule name =
  List.exists (fun (r : Rule.t) -> String.equal r.name name) rules
  || List.exists (fun (p : Pass.t) -> String.equal p.Pass.name name) passes

let find name =
  List.find_opt (fun (r : Rule.t) -> String.equal r.name name) rules

(* Suppression hygiene violations (missing reason, unknown rule name,
   unparseable payload), as findings of the pseudo-rule "suppression".
   Shared between the per-file entry point below and the two-phase
   driver. *)
let hygiene_findings (collected : Suppress.collected) =
  List.filter_map
    (fun (s : Suppress.scope) ->
      if not (known_rule s.rule) then
        Some
          (Finding.make ~rule:"suppression" ~loc:s.loc
             ~message:
               (Printf.sprintf
                  "[@problint.allow %s ...] names an unknown rule" s.rule)
             ())
      else if String.length (String.trim s.reason) = 0 then
        Some
          (Finding.make ~rule:"suppression" ~loc:s.loc
             ~message:
               (Printf.sprintf
                  "[@problint.allow %s] must carry a written reason: \
                   [@problint.allow %s \"why this is sound\"]"
                  s.rule s.rule)
             ())
      else None)
    collected.Suppress.scopes
  @ List.map
      (fun loc ->
        Finding.make ~rule:"suppression" ~loc
          ~message:
            "malformed [@problint.allow] payload; expected \
             [@problint.allow <rule> \"reason\"]"
          ())
      collected.Suppress.malformed

(* A well-formed scope is eligible for the unused-suppression check;
   malformed / unknown / reason-less scopes are already hygiene
   findings and are not double-reported. *)
let scope_well_formed (s : Suppress.scope) =
  known_rule s.rule && String.length (String.trim s.reason) > 0

let unused_finding (s : Suppress.scope) =
  Finding.make ~rule:"suppression" ~loc:s.loc
    ~message:
      (Printf.sprintf
         "[@problint.allow %s] suppresses nothing in this run; drop it or \
          fix the reason"
         s.rule)
    ()

(* Run every per-file rule on a parsed unit, apply suppression scopes,
   and append hygiene findings. This is the single-file entry point
   used by the unit tests; the driver runs the same rules but applies
   suppression globally so it can also report unused scopes. *)
let check_structure (ctx : Lint_ctx.t) (str : Ppxlib.Parsetree.structure) =
  let collected = Suppress.collect str in
  let ctx = { ctx with Lint_ctx.hot = ctx.Lint_ctx.hot || collected.hot } in
  let raw = List.concat_map (fun (r : Rule.t) -> r.check ctx str) rules in
  let kept, suppressed =
    List.partition
      (fun f -> not (Suppress.is_suppressed collected.scopes f))
      raw
  in
  ( List.sort Finding.compare (kept @ hygiene_findings collected),
    List.length suppressed )

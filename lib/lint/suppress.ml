(* Suppression attributes.

   [\[@@@problint.hot\]] (floating, usually at the top of a file) marks
   the compilation unit as a hot-path module: the hot-path-allocation
   rule switches on and the unsafe rule tolerates [Array.unsafe_*] and
   physical equality.

   [\[@problint.allow <rule> "reason"\]] on an expression and
   [\[@@problint.allow <rule> "reason"\]] on a structure item / value
   binding suppress findings of [<rule>] whose location falls inside
   the annotated node. A floating [\[@@@problint.allow <rule> "reason"\]]
   suppresses for the rest of the file. Suppressions without a written
   reason do not suppress anything — the driver reports them. *)

open Ppxlib

type scope = {
  rule : string;
  reason : string;
  start_c : int;
  end_c : int;
  loc : Location.t;
}

type collected = {
  scopes : scope list;
  malformed : Location.t list;  (** unparseable [problint.allow] payloads *)
  hot : bool;
  event_loop : bool;
      (** file carries [\[@@@problint.event_loop\]]: its functions are
          roots for the blocking-taint pass — nothing they reach may
          block outside the select call itself *)
}

let allow_name = "problint.allow"
let hot_name = "problint.hot"
let event_loop_name = "problint.event_loop"

let parse_allow_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Lident rule; _ } -> Some (rule, "")
      | Pexp_apply
          ( { pexp_desc = Pexp_ident { txt = Lident rule; _ }; _ },
            [
              ( Nolabel,
                { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ }
              );
            ] ) ->
          Some (rule, reason)
      | _ -> None)
  | _ -> None

let collect (str : structure) =
  let scopes = ref [] in
  let malformed = ref [] in
  let hot = ref false in
  let event_loop = ref false in
  let handle ~(loc : Location.t) ~to_eof (attr : attribute) =
    if String.equal attr.attr_name.txt hot_name then hot := true
    else if String.equal attr.attr_name.txt event_loop_name then
      event_loop := true
    else if String.equal attr.attr_name.txt allow_name then
      match parse_allow_payload attr with
      | Some (rule, reason) ->
          scopes :=
            {
              rule;
              reason;
              start_c = loc.loc_start.pos_cnum;
              end_c = (if to_eof then max_int else loc.loc_end.pos_cnum);
              loc = attr.attr_loc;
            }
            :: !scopes
      | None -> malformed := attr.attr_loc :: !malformed
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_attribute a -> handle ~loc:si.pstr_loc ~to_eof:true a
        | _ -> ());
        super#structure_item si

      method! value_binding vb =
        List.iter (handle ~loc:vb.pvb_loc ~to_eof:false) vb.pvb_attributes;
        super#value_binding vb

      method! expression e =
        List.iter (handle ~loc:e.pexp_loc ~to_eof:false) e.pexp_attributes;
        super#expression e
    end
  in
  it#structure str;
  {
    scopes = !scopes;
    malformed = !malformed;
    hot = !hot;
    event_loop = !event_loop;
  }

(* A finding is suppressed by a scope for the same rule that encloses
   its location AND carries a written reason. *)
let suppresses scope (f : Finding.t) =
  String.equal scope.rule f.rule
  && String.length (String.trim scope.reason) > 0
  && scope.start_c <= f.cnum
  && f.cnum <= scope.end_c

let is_suppressed scopes f = List.exists (fun s -> suppresses s f) scopes

(* A lint rule: a name (the token used in [@problint.allow] payloads),
   a one-line description for --list-rules and the docs, and a checker
   over a parsed compilation unit. *)

type t = {
  name : string;
  doc : string;
  check : Lint_ctx.t -> Ppxlib.Parsetree.structure -> Finding.t list;
}

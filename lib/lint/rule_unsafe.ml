(* unsafe: [Obj.magic] is forbidden everywhere. Bounds-check-skipping
   accessors ([Array.unsafe_*], [Bytes.unsafe_*]) and physical equality
   ([==]/[!=] — identity, not structure, and famously wrong on boxed
   values) are confined to modules tagged [\[@@@problint.hot\]], where
   the proofs live next to the loop. *)

open Ppxlib

let name = "unsafe"

let doc =
  "Obj.magic anywhere; Array.unsafe_*/Bytes.unsafe_* and physical \
   equality ==/!= outside [@@@problint.hot] modules."

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let check (ctx : Lint_ctx.t) (str : structure) =
  let out = ref [] in
  let flag loc message = out := Finding.make ~rule:name ~loc ~message () :: !out in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = lid; loc } ->
            if Lint_ast.lid_ends lid [ "Obj"; "magic" ] then
              flag loc "Obj.magic defeats the type system; no exceptions"
            else if not ctx.hot then begin
              let unsafe_in m =
                Lint_ast.lid_is_module_fn lid ~modname:m
                  ~fn:(starts_with ~prefix:"unsafe_")
              in
              if unsafe_in "Array" || unsafe_in "Bytes" || unsafe_in "String"
              then
                flag loc
                  "bounds-check-skipping accessor outside a \
                   [@@@problint.hot] module"
              else
                match lid with
                | Lident ("==" | "!=") ->
                    flag loc
                      "physical equality on (potentially) structural values \
                       outside a [@@@problint.hot] module; use =/<> or \
                       annotate the identity-based use with \
                       [@problint.allow unsafe \"...\"]"
                | _ -> ()
            end
        | _ -> ());
        super#expression e
    end
  in
  it#structure str;
  !out

let rule = { Rule.name; doc; check }

(* Per-function effect summaries and their propagation along the call
   graph — the shared engine behind the interprocedural passes.

   A seed is a syntactic effect source inside one definition body (a
   raising primitive, a blocking primitive). [propagate] pushes seeds
   from callee to caller until fixpoint, keeping for every
   (definition, seed) pair the length of the shortest call chain and
   the next hop along it, so passes can reconstruct and print the full
   entry-point-to-seed path. Depth 1 means the definition contains the
   seed directly; depth n>1 means it is n-1 calls away.

   Raise effects respect absorption (a call made under [try]/[match
   ... exception] does not propagate its callee's raises); blocking
   effects do not (catching an exception does not unblock a syscall). *)

open Ppxlib

type seed = {
  sd_def : int;  (** definition containing the seed *)
  sd_loc : Location.t;
  sd_desc : string;  (** e.g. ["failwith raises Failure"] *)
  sd_kind : string;  (** pass-specific tag, e.g. ["partial"]/["named"] *)
}

let seed_key (s : seed) =
  (s.sd_loc.loc_start.pos_fname, s.sd_loc.loc_start.pos_cnum)

type reach = {
  r_depth : int;  (** defs on the chain, including both ends *)
  r_via : (int * Location.t) option;
      (** next callee + reference site; [None] at the seed's own def *)
}

type propagation = {
  seeds : (string * int, seed) Hashtbl.t;  (** key -> seed *)
  reaches : (int * (string * int), reach) Hashtbl.t;
      (** (def, seed key) -> shortest chain info *)
}

let propagate (model : Model.t) ~(own_seeds : Model.def -> seed list)
    ~(respect_absorption : bool) =
  let seeds = Hashtbl.create 64 in
  let reaches = Hashtbl.create 256 in
  let queue = Queue.create () in
  Array.iter
    (fun (d : Model.def) ->
      let ss = own_seeds d in
      List.iter
        (fun s ->
          let key = seed_key s in
          Hashtbl.replace seeds key s;
          Hashtbl.replace reaches (d.Model.d_index, key)
            { r_depth = 1; r_via = None })
        ss;
      if ss <> [] then Queue.add d.Model.d_index queue)
    model.Model.defs;
  (* Monotone worklist: depths only decrease, keys only appear, so the
     loop terminates. *)
  while not (Queue.is_empty queue) do
    let callee = Queue.pop queue in
    let callee_entries =
      Hashtbl.fold
        (fun (d, key) r acc -> if d = callee then (key, r) :: acc else acc)
        reaches []
    in
    List.iter
      (fun (c : Model.call) ->
        if not (respect_absorption && c.Model.c_absorbed) then begin
          let caller = c.Model.c_caller in
          let improved = ref false in
          List.iter
            (fun (key, (r : reach)) ->
              let cand = r.r_depth + 1 in
              let better =
                match Hashtbl.find_opt reaches (caller, key) with
                | Some cur -> cand < cur.r_depth
                | None -> true
              in
              if better then begin
                Hashtbl.replace reaches (caller, key)
                  { r_depth = cand; r_via = Some (callee, c.Model.c_loc) };
                improved := true
              end)
            callee_entries;
          if !improved then Queue.add caller queue
        end)
      model.Model.callers.(callee)
  done;
  { seeds; reaches }

let reaches_of prop ~def =
  Hashtbl.fold
    (fun (d, key) r acc -> if d = def then (key, r) :: acc else acc)
    prop.reaches []

let reach prop ~def ~key = Hashtbl.find_opt prop.reaches (def, key)

(* The full call chain from [def] down to the seed, as reporter steps:
   the entry definition at its own location, then one step per hop at
   the reference site, then the seed itself. *)
let chain (model : Model.t) prop ~def ~key =
  let seed = Hashtbl.find_opt prop.seeds key in
  let rec walk d acc =
    let entry = Hashtbl.find_opt prop.reaches (d, key) in
    match entry with
    | None -> List.rev acc
    | Some { r_via = None; _ } -> List.rev acc
    | Some { r_via = Some (next, loc); _ } ->
        let name = model.Model.defs.(next).Model.d_qual in
        walk next (Finding.step ~name ~loc :: acc)
  in
  let head =
    Finding.step ~name:model.Model.defs.(def).Model.d_qual
      ~loc:model.Model.defs.(def).Model.d_loc
  in
  let hops = walk def [] in
  let tail =
    match seed with
    | Some s -> [ Finding.step ~name:s.sd_desc ~loc:s.sd_loc ]
    | None -> []
  in
  (head :: hops) @ tail

(* ------------------------------------------------------------------ *)
(* Raise seeds (exception-flow pass; also feeds the resource pass's
   unsafe-window analysis). *)

(* Exceptions that are sanctioned or pure control flow and therefore
   never seed: contextful contract violations (Invalid_argument), the
   Unix error channel (always handled at call sites by pattern), and
   the compiler's own assertion channel (assert false is seeded
   separately as a partial primitive). An *explicit* [raise Not_found]
   is also benign — it is a deliberate, visible stdlib-style [find]
   contract (the store layers mirror [Hashtbl.find] on purpose); the
   dangerous case is the *implicit* Not_found smuggled in by calling
   [Hashtbl.find] itself, which stays a seed of its own kind. *)
let benign_exception = function
  | "Invalid_argument" | "Unix_error" | "Assert_failure" | "Exit"
  | "Not_found" ->
      true
  | _ -> false

(* Single-component prims are Stdlib names: match only the bare or
   [Stdlib.]-qualified ident, NOT an arbitrary [Module.flush] — a
   repo-defined [Conn.flush] is a non-blocking drain, not the channel
   primitive. Multi-component suffixes keep the permissive match. *)
let matches_prim lid suffix =
  match suffix with
  | [ single ] -> (
      match Lint_ast.flatten_lid lid with
      | [ n ] | [ "Stdlib"; n ] -> String.equal n single
      | _ -> false)
  | _ -> Lint_ast.lid_ends lid suffix

(* Exceptions declared with [let exception E in ...] inside the body
   are local control flow (raised and caught within the definition):
   their raises never seed. *)
let local_exceptions_of_body body =
  let names = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_letexception (ec, _) -> names := ec.pext_name.txt :: !names
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !names

(* Raise seeds of one definition body. [partials_allowed] consults the
   suppression ledger: a partial primitive under a reasoned partiality
   (or exn_flow) allow is an audited local invariant and does not
   propagate. Sites inside absorption regions never seed. *)
let raise_seeds (model : Model.t) (d : Model.def) =
  let u = d.Model.d_unit in
  let locals = local_exceptions_of_body d.Model.d_body in
  let out = ref [] in
  let absorbed loc = Model.absorbed_at model ~def:d.Model.d_index ~loc in
  let allowed_any rules (loc : Location.t) =
    List.exists
      (fun rule -> Model.allowed model ~rule ~u ~cnum:loc.loc_start.pos_cnum)
      rules
  in
  let seed ~loc ~desc ~kind =
    out :=
      { sd_def = d.Model.d_index; sd_loc = loc; sd_desc = desc; sd_kind = kind }
      :: !out
  in
  let partial ~loc name =
    if (not (absorbed loc)) && not (allowed_any [ "partiality"; "exn_flow" ] loc)
    then seed ~loc ~desc:(name ^ " (partial primitive)") ~kind:"partial"
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_assert
            {
              pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None);
              _;
            } ->
            partial ~loc:e.pexp_loc "assert false"
        | Pexp_ident { txt = lid; loc } ->
            if matches_prim lid [ "failwith" ] then partial ~loc "failwith"
            else if Lint_ast.lid_ends lid [ "Option"; "get" ] then
              partial ~loc "Option.get"
            else if Lint_ast.lid_ends lid [ "List"; "hd" ] then
              partial ~loc "List.hd"
            else if Lint_ast.lid_ends lid [ "Hashtbl"; "find" ] then begin
              if
                (not (absorbed loc))
                && not
                     (Model.allowed model ~rule:"exn_flow" ~u
                        ~cnum:loc.loc_start.pos_cnum)
              then
                seed ~loc ~desc:"Hashtbl.find (raises Not_found)" ~kind:"find"
            end
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt = Lident "raise"; _ }; _ }, args)
          -> (
            let exn_name =
              match args with
              | [ (Nolabel, arg) ] -> (
                  match arg.pexp_desc with
                  | Pexp_construct ({ txt; _ }, _) -> (
                      match List.rev (Lint_ast.flatten_lid txt) with
                      | name :: _ -> Some name
                      | [] -> None)
                  | _ -> None)
              | _ -> None
            in
            match exn_name with
            | Some name
              when (not (benign_exception name))
                   && (not (List.mem name locals))
                   && (not (absorbed e.pexp_loc))
                   && not
                        (Model.allowed model ~rule:"exn_flow" ~u
                           ~cnum:e.pexp_loc.loc_start.pos_cnum) ->
                seed ~loc:e.pexp_loc ~desc:("raise " ^ name) ~kind:"named"
            | Some _ | None -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#expression d.Model.d_body;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Blocking seeds (event-loop taint pass). *)

(* Primitives that always (potentially) park the calling thread. The
   event loop's own [Unix.select] is the sanctioned wait point and is
   deliberately absent. *)
let always_blocking =
  [
    ([ "Unix"; "sleep" ], "Unix.sleep blocks the whole process");
    ([ "Unix"; "sleepf" ], "Unix.sleepf blocks the whole process");
    ([ "Unix"; "system" ], "Unix.system forks and waits synchronously");
    ([ "Unix"; "wait" ], "Unix.wait blocks until a child exits");
    ([ "Unix"; "waitpid" ], "Unix.waitpid can block until a child exits");
    ( [ "Unix"; "connect" ],
      "Unix.connect can block in the TCP handshake / backlog" );
    ([ "print_string" ], "stdout write can block on a slow consumer");
    ([ "print_endline" ], "stdout write can block on a slow consumer");
    ([ "print_newline" ], "stdout write can block on a slow consumer");
    ([ "print_int" ], "stdout write can block on a slow consumer");
    ([ "print_char" ], "stdout write can block on a slow consumer");
    ([ "print_float" ], "stdout write can block on a slow consumer");
    ([ "prerr_endline" ], "stderr write can block on a slow consumer");
    ([ "prerr_string" ], "stderr write can block on a slow consumer");
    ([ "Printf"; "printf" ], "stdout formatting can block on a slow consumer");
    ([ "Printf"; "eprintf" ], "stderr formatting can block on a slow consumer");
    ([ "Format"; "printf" ], "stdout formatting can block on a slow consumer");
    ([ "Format"; "eprintf" ], "stderr formatting can block on a slow consumer");
    ([ "open_in" ], "file open is blocking I/O");
    ([ "open_in_bin" ], "file open is blocking I/O");
    ([ "open_in_gen" ], "file open is blocking I/O");
    ([ "open_out" ], "file open is blocking I/O");
    ([ "open_out_bin" ], "file open is blocking I/O");
    ([ "open_out_gen" ], "file open is blocking I/O");
    ([ "Unix"; "openfile" ], "file open is blocking I/O");
    ([ "input_line" ], "channel read is blocking I/O");
    ([ "input" ], "channel read is blocking I/O");
    ([ "really_input" ], "channel read is blocking I/O");
    ([ "really_input_string" ], "channel read is blocking I/O");
    ([ "input_char" ], "channel read is blocking I/O");
    ([ "input_byte" ], "channel read is blocking I/O");
    ([ "in_channel_length" ], "channel metadata read is blocking I/O");
    ([ "output_string" ], "channel write is blocking I/O");
    ([ "output_bytes" ], "channel write is blocking I/O");
    ([ "output" ], "channel write is blocking I/O");
    ([ "output_char" ], "channel write is blocking I/O");
    ([ "flush" ], "channel flush is blocking I/O");
  ]

(* Wall-clock reads: blocking seeds everywhere except inside the
   audited [Clock] wrapper (the one sanctioned read). *)
let clock_reads =
  [
    ([ "Unix"; "gettimeofday" ], "Unix.gettimeofday outside Clock");
    ([ "Unix"; "time" ], "Unix.time outside Clock");
    ([ "Sys"; "time" ], "Sys.time outside Clock");
  ]

(* Raw fd I/O: a blocking seed unless the enclosing module establishes
   the non-blocking discipline (it calls [Unix.set_nonblock]
   somewhere). Per-fd proof is beyond a syntactic model; the
   module-level discipline is the audited unit. *)
let fd_io =
  [
    ([ "Unix"; "read" ], "Unix.read on an fd not provably non-blocking");
    ([ "Unix"; "write" ], "Unix.write on an fd not provably non-blocking");
    ( [ "Unix"; "write_substring" ],
      "Unix.write_substring on an fd not provably non-blocking" );
    ( [ "Unix"; "single_write" ],
      "Unix.single_write on an fd not provably non-blocking" );
    ([ "Unix"; "accept" ], "Unix.accept on an fd not provably non-blocking");
    ([ "Unix"; "recv" ], "Unix.recv on an fd not provably non-blocking");
    ([ "Unix"; "send" ], "Unix.send on an fd not provably non-blocking");
  ]

let unit_sets_nonblock (u : Model.unit_info) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ }
          when Lint_ast.lid_ends txt [ "Unix"; "set_nonblock" ] ->
            found := true
        | _ -> ());
        super#expression e
    end
  in
  it#structure u.u_str;
  !found

let blocking_seeds (model : Model.t) (d : Model.def) =
  let u = d.Model.d_unit in
  let nonblock_module = unit_sets_nonblock u in
  let in_clock = String.equal u.Model.u_module "Clock" in
  let out = ref [] in
  let seed ~loc ~desc =
    if
      not
        (Model.allowed model ~rule:"blocking" ~u ~cnum:loc.loc_start.pos_cnum)
    then
      out :=
        {
          sd_def = d.Model.d_index;
          sd_loc = loc;
          sd_desc = desc;
          sd_kind = "blocking";
        }
        :: !out
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = lid; loc } -> (
            (* A bare name that resolves to a repo definition shadows
               the Stdlib prim ([let rec flush t = ...] is this module's
               flush, not the channel primitive). *)
            let matches (suffix, _) =
              matches_prim lid suffix
              && not
                   (match lid with
                   | Lident _ -> Model.resolve model u lid <> None
                   | _ -> false)
            in
            match List.find_opt matches always_blocking with
            | Some (_, desc) -> seed ~loc ~desc
            | None -> (
                match List.find_opt matches clock_reads with
                | Some (_, desc) -> if not in_clock then seed ~loc ~desc
                | None -> (
                    match List.find_opt matches fd_io with
                    | Some (_, desc) ->
                        if not nonblock_module then seed ~loc ~desc
                    | None -> ())))
        | _ -> ());
        super#expression e
    end
  in
  it#expression d.Model.d_body;
  List.rev !out

(* An interprocedural pass: runs once over the whole-repo model (phase
   2 of the driver), in contrast to [Rule.t] which runs per file over a
   single parse tree. Passes may emit findings with a call [chain]. *)

type t = {
  name : string;  (** the rule name used in findings and allow scopes *)
  doc : string;
  check : Model.t -> Finding.t list;
}

type t = {
  read_wal : unit -> string;
  append_wal : string -> unit;
  reset_wal : string -> unit;
  read_snapshot : unit -> string option;
  write_snapshot : string -> unit;
  clear_snapshot : unit -> unit;
}

let of_sim ~wal ~snapshot =
  {
    read_wal = (fun () -> Sim_file.contents wal);
    append_wal = (fun s -> Sim_file.append wal s);
    reset_wal =
      (fun s ->
        Sim_file.clear wal;
        Sim_file.append wal s);
    read_snapshot =
      (fun () ->
        if Sim_file.length snapshot = 0 then None
        else Some (Sim_file.contents snapshot));
    write_snapshot = (fun s -> Sim_file.store snapshot s);
    clear_snapshot = (fun () -> Sim_file.clear snapshot);
  }

let in_memory () =
  let wal = Sim_file.create () and snapshot = Sim_file.create () in
  (of_sim ~wal ~snapshot, wal, snapshot)

(* The file-backed device below is synchronous by design: WAL appends
   and snapshot rewrites are buffered channel I/O whose latency is part
   of the durability model (a durable broker accepts the stall; see
   DESIGN.md on the WAL). The blocking-taint pass would otherwise
   report every channel primitive here via Broker_server.create. *)
[@@@problint.allow
  blocking
    "synchronous durable device: WAL append/snapshot latency is an \
     accepted, documented cost of durability, not an accidental stall"]

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let fs ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let wal_path = Filename.concat dir "wal.log" in
  let snap_path = Filename.concat dir "snapshot.bin" in
  (* One persistent append channel, (re)opened lazily and flushed per
     record; reset closes it so the rewrite is visible to readers. *)
  let chan = ref None in
  let close_chan () =
    match !chan with
    | Some oc ->
        close_out oc;
        chan := None
    | None -> ()
  in
  let append_chan () =
    match !chan with
    | Some oc -> oc
    | None ->
        let oc =
          open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ]
            0o644 wal_path
        in
        chan := Some oc;
        oc
  in
  {
    read_wal =
      (fun () ->
        close_chan ();
        read_file wal_path);
    append_wal =
      (fun s ->
        let oc = append_chan () in
        output_string oc s;
        flush oc);
    reset_wal =
      (fun s ->
        close_chan ();
        write_file wal_path s);
    read_snapshot =
      (fun () ->
        match read_file snap_path with "" -> None | bytes -> Some bytes);
    write_snapshot =
      (fun s ->
        let tmp = snap_path ^ ".tmp" in
        write_file tmp s;
        Sys.rename tmp snap_path);
    clear_snapshot =
      (fun () -> if Sys.file_exists snap_path then Sys.remove snap_path);
  }

module Store = Probsub_core.Subscription_store
module IntMap = Map.Make (Int)

type t = {
  dev : Device.t;
  wal : Wal.t;
  meta : Codec.meta;
  mutable fence : int;
}

let attach_journal t store =
  Store.set_journal store (Some (fun op -> Wal.append t.wal (Codec.Op op)))

let fresh ?policy ?pool ~device ~arity ~seed () =
  let store = Store.create ?policy ?pool ~arity ~seed () in
  let meta =
    { Codec.m_arity = arity; m_seed = seed; m_policy = Store.policy store }
  in
  device.Device.clear_snapshot ();
  device.Device.reset_wal "";
  let wal = Wal.attach ~device ~next_lsn:0 in
  Wal.append wal (Codec.Genesis meta);
  let t = { dev = device; wal; meta; fence = 0 } in
  attach_journal t store;
  (store, t)

type recovered = {
  r_log : t;
  r_store : Store.t;
  r_bindings : Codec.binding list;
  r_epochs : (int * int) list;
  r_fence : int;
  r_repaired : bool;
}

(* A snapshot blob is one self-contained frame. Anything else — torn,
   bit-flipped, trailing garbage — is treated as no snapshot at all;
   the WAL (which still holds its genesis record unless a compaction
   completed, in which case the snapshot write had already landed
   atomically) is then the sole source of truth. *)
let read_snapshot (device : Device.t) =
  match device.Device.read_snapshot () with
  | None -> None
  | Some bytes -> (
      match Codec.read_frame bytes ~pos:0 with
      | Codec.Frame { payload; next; _ } when next = String.length bytes -> (
          match Codec.decode payload with
          | Ok (Codec.Snapshot { meta; last_lsn; image; bindings }) ->
              Some (meta, last_lsn, image, bindings)
          | Ok _ | Error _ -> None)
      | _ -> None)

let recover ?pool ~device () =
  let wal_bytes = device.Device.read_wal () in
  let scanned = Wal.scan wal_bytes in
  let repaired = scanned.Wal.stop <> Wal.Clean in
  if repaired then
    device.Device.reset_wal (String.sub wal_bytes 0 scanned.Wal.valid_bytes);
  let base =
    match read_snapshot device with
    | Some (meta, last_lsn, image, bindings) ->
        Ok (meta, last_lsn, image, bindings, scanned.Wal.records)
    | None -> (
        match scanned.Wal.records with
        | { Wal.e_record = Codec.Genesis meta; _ } :: rest ->
            Ok (meta, -1, Store.empty_image, [], rest)
        | [] -> Error "no recoverable state: empty log and no snapshot"
        | _ :: _ ->
            Error "no recoverable state: log does not begin with genesis")
  in
  match base with
  | Error _ as e -> e
  | Ok (meta, snap_lsn, image, snap_bindings, records) -> (
      let live =
        List.filter (fun e -> e.Wal.e_lsn > snap_lsn) records
      in
      let bindings =
        ref
          (List.fold_left
             (fun m b -> IntMap.add b.Codec.b_rid b m)
             IntMap.empty snap_bindings)
      in
      let epochs =
        ref
          (List.fold_left
             (fun m b -> IntMap.add b.Codec.b_key b.Codec.b_epoch m)
             IntMap.empty snap_bindings)
      in
      let unbind rid =
        match IntMap.find_opt rid !bindings with
        | None -> ()
        | Some b ->
            bindings := IntMap.remove rid !bindings;
            epochs := IntMap.remove b.Codec.b_key !epochs
      in
      let foreign = ref None in
      let fence = ref 0 in
      let ops = ref [] in
      List.iter
        (fun (e : Wal.entry) ->
          match e.Wal.e_record with
          | Codec.Fence { epoch } -> fence := max !fence epoch
          | Codec.Op op ->
              ops := op :: !ops;
              (match op with
              | Store.Op_remove { id; _ } -> unbind id
              | Store.Op_expire { expired; _ } -> List.iter unbind expired
              | Store.Op_add _ | Store.Op_renew _ -> ())
          | Codec.Bind b ->
              bindings := IntMap.add b.Codec.b_rid b !bindings;
              epochs := IntMap.add b.Codec.b_key b.Codec.b_epoch !epochs
          | Codec.Epoch_note { key; epoch } ->
              epochs := IntMap.add key epoch !epochs;
              (* Fold the bump into the owning binding too, so a later
                 [compact ~bindings:r_bindings] cannot resurrect the
                 pre-refresh epoch from a stale [b_epoch]. *)
              bindings :=
                IntMap.map
                  (fun b ->
                    if b.Codec.b_key = key then { b with Codec.b_epoch = epoch }
                    else b)
                  !bindings
          | Codec.Genesis _ ->
              foreign := Some "unexpected genesis record mid-log"
          | Codec.Snapshot _ ->
              foreign := Some "unexpected snapshot record in the wal")
        live;
      match !foreign with
      | Some reason -> Error reason
      | None -> (
          let ops = List.rev !ops in
          match
            Store.recover ~policy:meta.Codec.m_policy ?pool
              ~arity:meta.Codec.m_arity ~seed:meta.Codec.m_seed ~image ops
          with
          | exception Invalid_argument msg ->
              Error ("log is not a journal of one store: " ^ msg)
          | store ->
              let last_wal_lsn =
                List.fold_left
                  (fun acc (e : Wal.entry) -> max acc e.Wal.e_lsn)
                  (-1) records
              in
              let next_lsn = max snap_lsn last_wal_lsn + 1 in
              let wal = Wal.attach ~device ~next_lsn in
              let t = { dev = device; wal; meta; fence = !fence } in
              attach_journal t store;
              Ok
                {
                  r_log = t;
                  r_store = store;
                  r_bindings = List.map snd (IntMap.bindings !bindings);
                  r_epochs = IntMap.bindings !epochs;
                  r_fence = !fence;
                  r_repaired = repaired;
                }))

let log_binding t b = Wal.append t.wal (Codec.Bind b)
let log_epoch t ~key ~epoch = Wal.append t.wal (Codec.Epoch_note { key; epoch })

let log_fence t ~epoch =
  if epoch > t.fence then begin
    t.fence <- epoch;
    Wal.append t.wal (Codec.Fence { epoch })
  end

let fence t = t.fence

let compact t store ~bindings =
  let last_lsn = Wal.next_lsn t.wal - 1 in
  let image = Store.image store in
  let payload =
    Codec.encode (Codec.Snapshot { meta = t.meta; last_lsn; image; bindings })
  in
  t.dev.Device.write_snapshot (Codec.frame ~lsn:last_lsn payload);
  t.dev.Device.reset_wal "";
  (* The snapshot record does not carry the fence; re-journal it so a
     recovery after compaction still sees the highest epoch. *)
  if t.fence > 0 then Wal.append t.wal (Codec.Fence { epoch = t.fence })

let wal_size t = String.length (t.dev.Device.read_wal ())
let next_lsn t = Wal.next_lsn t.wal
let device t = t.dev

(* Standard reflected CRC-32. The byte table is computed once at
   module initialisation; lookups keep the per-byte cost to one shift,
   one xor and one load. All arithmetic is in the native int (the
   checksum fits 32 bits), masked on exit. *)

let table =
  let poly = 0xEDB88320 in
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := poly lxor (!c lsr 1) else c := !c lsr 1
      done;
      !c)

let string_crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.string_crc: slice out of range";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

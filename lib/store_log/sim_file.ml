type t = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable write_limit : int option;
}

let create () = { data = Bytes.create 64; len = 0; write_limit = None }
let contents t = Bytes.sub_string t.data 0 t.len
let length t = t.len

let ensure t cap =
  if cap > Bytes.length t.data then begin
    let bigger = Bytes.create (max cap (2 * Bytes.length t.data)) in
    Bytes.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end

let append t s =
  let want = String.length s in
  let allowed =
    match t.write_limit with
    | None -> want
    | Some cap -> min want (max 0 (cap - t.len))
  in
  if allowed > 0 then begin
    ensure t (t.len + allowed);
    Bytes.blit_string s 0 t.data t.len allowed;
    t.len <- t.len + allowed
  end

let store t s =
  let fits =
    match t.write_limit with
    | None -> true
    | Some cap -> String.length s <= cap
  in
  if fits then begin
    ensure t (String.length s);
    Bytes.blit_string s 0 t.data 0 (String.length s);
    t.len <- String.length s
  end

let clear t = t.len <- 0

let set_write_limit t limit =
  (match limit with
  | Some n when n < 0 -> invalid_arg "Sim_file.set_write_limit: negative cap"
  | Some _ | None -> ());
  t.write_limit <- limit

let truncate t n =
  if n < 0 then invalid_arg "Sim_file.truncate: negative length";
  if n < t.len then t.len <- n

let flip_bit t ~byte ~bit =
  if byte < 0 || byte >= t.len then
    invalid_arg "Sim_file.flip_bit: byte out of range";
  if bit < 0 || bit > 7 then invalid_arg "Sim_file.flip_bit: bit out of range";
  Bytes.set t.data byte
    (Char.chr (Char.code (Bytes.get t.data byte) lxor (1 lsl bit)))

(** Append-side and scan-side of the write-ahead log.

    A WAL file is a sequence of {!Codec} frames with strictly
    increasing LSNs. {!scan} is total: whatever bytes it is handed, it
    returns the longest valid record prefix and a verdict about what
    stopped it — it never raises on corrupt input. *)

type stop =
  | Clean  (** The file ends exactly at a frame boundary. *)
  | Truncated of int
      (** A torn tail: the last [n] bytes are a partial frame. *)
  | Corrupt of { offset : int; reason : string }
      (** A frame at [offset] is damaged (bad CRC, bad length,
          undecodable payload, or LSN regression). *)

type entry = {
  e_offset : int;  (** Byte offset of the frame header. *)
  e_bytes : int;  (** Total frame size, header included. *)
  e_lsn : int;
  e_record : Codec.record;
}

type scanned = {
  records : entry list;  (** Valid prefix, in file order. *)
  valid_bytes : int;  (** Length of the longest valid prefix. *)
  total_bytes : int;
  stop : stop;
}

val scan : string -> scanned

val scan_from : string -> pos:int -> last_lsn:int -> scanned
(** Incremental scan resuming mid-stream: parse frames starting at
    byte offset [pos], enforcing that the first LSN exceeds
    [last_lsn]. [scan s] is [scan_from s ~pos:0 ~last_lsn:(-1)], and
    for any entry [e] of a full scan, resuming at [e.e_offset] with
    the preceding entry's LSN yields exactly the remaining suffix —
    the WAL-tail streaming contract the replication shipper relies
    on. [valid_bytes] is the absolute offset where the scan stopped
    (not a count relative to [pos]). @raise Invalid_argument if
    [pos] lies outside the byte string. *)

type t
(** An open log positioned for appending. *)

val attach : device:Device.t -> next_lsn:int -> t
(** @raise Invalid_argument if [next_lsn < 0]. *)

val append : t -> Codec.record -> unit
(** Frame the record at the current LSN, append it through the device
    (flushed), and advance the LSN. *)

val next_lsn : t -> int

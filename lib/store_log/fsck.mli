(** Offline integrity check over a device — the engine behind
    [probsub store fsck]. Walks the snapshot and every WAL frame,
    reports per-record verdicts, and says whether the state is
    recoverable and whether it is fully clean. Never raises on damaged
    input. *)

type verdict = {
  v_offset : int;
  v_bytes : int;  (** Frame size when known, 0 otherwise. *)
  v_lsn : int option;
  v_kind : string;  (** "genesis", "op:add", ... or "?" when unknown. *)
  v_status : string;  (** "ok", "bad-crc", "bad-length", "truncated",
                          "undecodable". *)
}

type report = {
  wal_total : int;
  wal_valid : int;  (** Longest valid prefix, in bytes. *)
  wal_records : verdict list;
  wal_stop : string;  (** "clean", "truncated", "corrupt". *)
  snapshot_present : bool;
  snapshot_ok : bool;  (** Vacuously true when absent. *)
  snapshot_detail : string;
  recoverable : bool;
      (** A usable state exists: a good snapshot, or a WAL prefix that
          starts with a genesis record. *)
  clean : bool;  (** No damage anywhere. *)
}

val run : Device.t -> report

val record_kind : Codec.record -> string
(** The [v_kind] string for a decoded record. *)

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line rendering. *)

val to_json : report -> string
(** Machine-readable rendering for CI. *)

type stop =
  | Clean
  | Truncated of int
  | Corrupt of { offset : int; reason : string }

type entry = {
  e_offset : int;
  e_bytes : int;
  e_lsn : int;
  e_record : Codec.record;
}

type scanned = {
  records : entry list;
  valid_bytes : int;
  total_bytes : int;
  stop : stop;
}

let scan_from s ~pos ~last_lsn =
  if pos < 0 || pos > String.length s then
    invalid_arg "Wal.scan_from: position outside the byte string";
  let total = String.length s in
  let rec go pos last_lsn acc =
    if pos >= total then
      { records = List.rev acc; valid_bytes = pos; total_bytes = total;
        stop = Clean }
    else
      let finish stop =
        { records = List.rev acc; valid_bytes = pos; total_bytes = total;
          stop }
      in
      match Codec.read_frame s ~pos with
      | Codec.Frame_truncated -> finish (Truncated (total - pos))
      | Codec.Frame_bad_length ->
          finish (Corrupt { offset = pos; reason = "bad length" })
      | Codec.Frame_bad_crc ->
          finish (Corrupt { offset = pos; reason = "bad crc" })
      | Codec.Frame_undecodable reason ->
          finish (Corrupt { offset = pos; reason })
      | Codec.Frame { lsn; payload; next } -> (
          if lsn <= last_lsn then
            finish (Corrupt { offset = pos; reason = "lsn regression" })
          else
            match Codec.decode payload with
            | Error reason -> finish (Corrupt { offset = pos; reason })
            | Ok record ->
                let e =
                  { e_offset = pos; e_bytes = next - pos; e_lsn = lsn;
                    e_record = record }
                in
                go next lsn (e :: acc))
  in
  go pos last_lsn []

let scan s = scan_from s ~pos:0 ~last_lsn:(-1)

type t = { device : Device.t; mutable next : int }

let attach ~device ~next_lsn =
  if next_lsn < 0 then invalid_arg "Wal.attach: negative next_lsn";
  { device; next = next_lsn }

let append t record =
  let frame = Codec.frame ~lsn:t.next (Codec.encode record) in
  t.device.Device.append_wal frame;
  t.next <- t.next + 1

let next_lsn t = t.next

(** A durable backing device: one WAL stream plus one snapshot slot.

    The interface is the minimal contract recovery needs — append and
    bulk-read for the log, atomic whole-blob replace for the snapshot —
    implemented over real files ({!fs}) or over fault-injectable
    {!Sim_file}s ({!of_sim}/{!in_memory}) so crash-point tests run
    without touching the filesystem. *)

type t = {
  read_wal : unit -> string;  (** Entire current WAL bytes. *)
  append_wal : string -> unit;  (** Append and flush. *)
  reset_wal : string -> unit;  (** Replace the WAL contents. *)
  read_snapshot : unit -> string option;  (** [None] when absent/empty. *)
  write_snapshot : string -> unit;  (** Atomic whole-blob replace. *)
  clear_snapshot : unit -> unit;  (** Drop the snapshot slot. *)
}

val of_sim : wal:Sim_file.t -> snapshot:Sim_file.t -> t
(** Back the device with caller-owned sim files — the caller keeps the
    handles to inject faults and to survive a simulated broker crash
    (the sim files model the disk, which outlives the process). *)

val in_memory : unit -> t * Sim_file.t * Sim_file.t
(** [of_sim] over two fresh sim files, returning them. *)

val fs : dir:string -> t
(** Files [wal.log] and [snapshot.bin] under [dir] (created if
    missing). Appends go through a persistent channel and are flushed
    per record; snapshots are written to a temp file and renamed into
    place. *)

(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    Every WAL and snapshot record is framed with a CRC of its payload;
    recovery trusts a record only when the stored and recomputed
    checksums agree, which is what makes "longest valid prefix" a
    well-defined notion under torn writes and bit flips. *)

val string_crc : string -> pos:int -> len:int -> int
(** Checksum of [len] bytes of [s] starting at [pos], as a value in
    [0, 2^32). @raise Invalid_argument on an out-of-range slice. *)

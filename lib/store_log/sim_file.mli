(** In-memory fault-injectable byte store — the I/O analogue of the
    broker layer's [Fault_plan].

    A {!t} models one file. Crash points are injected by capping the
    total bytes that ever reach "disk" ({!set_write_limit}): an append
    that runs into the cap lands only a prefix (a torn write), later
    appends land nothing — exactly the state a real log is left in
    when the process dies mid-write. Post-hoc damage (sector rot,
    manual truncation) is modelled by {!truncate} and {!flip_bit}.
    Recovery code reads through {!contents} and must treat every
    reachable state as a valid input: the qcheck crash-point suite
    drives arbitrary op sequences through arbitrary caps, cuts and
    flips and asserts recovery never raises. *)

type t

val create : unit -> t
(** An empty, unlimited file. *)

val contents : t -> string
val length : t -> int

val append : t -> string -> unit
(** Append, honouring the write limit: only the bytes that fit below
    the cap land, the rest vanish (a torn tail write). *)

val store : t -> string -> unit
(** Atomically replace the contents (the tmp-file + rename idiom of
    snapshot writes): the file either fully changes or — if the new
    contents would cross the write limit — keeps its old bytes.
    Rename is atomic, so there is no torn middle state. *)

val clear : t -> unit
(** Reset to empty (ignores the write limit; modelled as a successful
    O_TRUNC open). *)

val set_write_limit : t -> int option -> unit
(** [set_write_limit t (Some n)] caps the file at [n] total bytes:
    the crash point. [None] lifts the cap. @raise Invalid_argument on
    a negative cap. *)

val truncate : t -> int -> unit
(** Cut the file to its first [n] bytes ([n] past the end is a no-op).
    @raise Invalid_argument on a negative length. *)

val flip_bit : t -> byte:int -> bit:int -> unit
(** Flip one bit in place. @raise Invalid_argument if [byte] is out of
    range or [bit] is outside [0, 7]. *)

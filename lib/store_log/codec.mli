(** Binary codec for durable records, and the checksummed frame format.

    Record payloads are a compact tagged binary encoding (LEB128
    varints, zigzag for signed values, IEEE-754 bits for floats).
    On disk every record travels inside a {e frame}:

    {v
      +----------+----------+---------------------------------+
      | len u32LE| crc u32LE| payload  =  lsn varint ++ body  |
      +----------+----------+---------------------------------+
        4 bytes    4 bytes    len bytes, CRC-32 over payload
    v}

    [len] counts the payload bytes; [crc] is {!Crc32} of the payload.
    A reader accepts a frame only if the header is complete, [len]
    fits in the remaining bytes and is below {!max_frame}, and the
    checksum matches — so any torn write, truncation or bit flip turns
    the damaged frame (and everything after it) into a detectable
    suffix instead of silently corrupt state.

    Decoding is total: {!decode} returns [Error] on malformed bytes
    and never raises. *)

type meta = {
  m_arity : int;
  m_seed : int;
  m_policy : Probsub_core.Subscription_store.policy;
}
(** Everything needed to re-create an empty store identical to the one
    that wrote the log. *)

type binding = {
  b_rid : Probsub_core.Subscription_store.id;
  b_key : int;  (** network-wide subscription key *)
  b_okind : int;  (** origin constructor: 0 client, 1 publisher, 2 link *)
  b_oarg : int;  (** client id / link broker id; 0 for publisher *)
  b_epoch : int;  (** latest refresh epoch seen for the key *)
}
(** A broker's routing-table binding for one store id — the key ↔ id ↔
    origin correspondence that must survive a crash alongside the
    store itself. Kept store-log-generic (plain ints) so this library
    does not depend on the broker layer. *)

type record =
  | Genesis of meta  (** First record of a fresh log. *)
  | Op of Probsub_core.Subscription_store.op  (** One store mutation. *)
  | Bind of binding  (** A new routing binding (brokers only). *)
  | Epoch_note of { key : int; epoch : int }
      (** A refresh bumped the key's epoch without restating the
          binding. *)
  | Snapshot of {
      meta : meta;
      last_lsn : int;
      image : Probsub_core.Subscription_store.image;
      bindings : binding list;
    }
      (** A compaction point: the full store image plus live bindings
          as of [last_lsn]; WAL records with lsn <= [last_lsn] are
          superseded. *)
  | Fence of { epoch : int }
      (** A replication fence: this broker identity's monotone epoch
          was raised to [epoch] (a standby promoted itself, or an
          ex-primary acknowledged a newer writer). Recovery keeps the
          highest fence seen, and compaction re-journals it into the
          fresh WAL so the fence survives truncation — an ex-primary
          can never come back believing it still owns an old epoch. *)

val encode : record -> string
(** Payload bytes (unframed). *)

val decode : string -> (record, string) result
(** Total inverse of {!encode}; [Error reason] on any malformed
    input. *)

val max_frame : int
(** Upper bound on an accepted payload length; a longer [len] field is
    treated as corruption rather than a gigantic allocation. *)

val frame : lsn:int -> string -> string
(** [frame ~lsn payload] wraps an {!encode}d payload in the on-disk
    frame. @raise Invalid_argument if [lsn < 0] or the payload exceeds
    {!max_frame}. *)

type frame_result =
  | Frame of { lsn : int; payload : string; next : int }
      (** A valid frame; [next] is the offset just past it. *)
  | Frame_truncated  (** Clean end of data, or a frame cut short. *)
  | Frame_bad_length  (** [len] exceeds {!max_frame}. *)
  | Frame_bad_crc  (** Complete frame whose checksum mismatches. *)
  | Frame_undecodable of string
      (** Checksum valid but the payload failed varint/lsn parsing. *)

val read_frame : string -> pos:int -> frame_result
(** Parse one frame at [pos]; never raises. [pos = length] yields
    [Frame_truncated] (the clean-EOF case). *)

(** Primitive field encodings (LEB128 varints, zigzag, IEEE-754 bits),
    shared with the wire protocol of {!Probsub_server} so the two
    layers cannot drift. Reads are total. *)
module Prim : sig
  val write_uv : Buffer.t -> int -> unit
  (** Unsigned LEB128. @raise Invalid_argument on a negative value. *)

  val write_sv : Buffer.t -> int -> unit
  (** Zigzag-encoded signed varint. *)

  val write_f64 : Buffer.t -> float -> unit
  (** IEEE-754 bits, little-endian. *)

  val write_subscription : Buffer.t -> Probsub_core.Subscription.t -> unit
  (** Arity, then each range as two signed varints. *)

  val read_uv : string -> pos:int -> (int * int, string) result
  (** Value and the position just past it; [Error] on truncation or
      overflow — never raises. *)

  val read_sv : string -> pos:int -> (int * int, string) result
  val read_f64 : string -> pos:int -> (float * int, string) result

  val read_subscription :
    string -> pos:int -> (Probsub_core.Subscription.t * int, string) result
end

(** Incremental frame decoder for byte streams: feed whatever chunk a
    socket read produced, pop whole frames, and the partial tail stays
    buffered until its bytes arrive — so transports never need
    whole-frame reads. Agrees with {!read_frame} on every split of the
    same byte string (fuzzed). Unlike WAL recovery, a stream has no
    longest-valid-prefix to fall back to: the first damaged frame
    poisons the decoder permanently ([D_corrupt] is sticky) and the
    connection must be torn down and re-established. *)
module Decoder : sig
  type t

  type item =
    | D_frame of { lsn : int; payload : string }
        (** One complete frame, CRC-verified. *)
    | D_need_more  (** The buffered tail is a clean prefix of a frame. *)
    | D_corrupt of string
        (** Bad length, checksum or lsn; sticky — every later {!next}
            returns it again. *)

  val create : unit -> t

  val feed : t -> bytes -> pos:int -> len:int -> unit
  (** Append a chunk (copied out of [src] immediately, so the caller
      may reuse its read buffer). @raise Invalid_argument on a bad
      slice. *)

  val feed_string : t -> string -> unit

  val next : t -> item
  (** Pop the next complete frame, if the buffer holds one. *)

  val buffered : t -> int
  (** Bytes held for the partial tail (0 when fully drained). *)
end

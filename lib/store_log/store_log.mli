(** Durable subscription state: the write-ahead log tied to a
    {!Probsub_core.Subscription_store}.

    A log owns a {!Device.t} holding a WAL stream plus a snapshot
    slot. {!fresh} initialises both and hooks the store's effect
    journal so every mutation is framed, checksummed and flushed
    before the call returns. {!recover} is the crash path: it reads
    whatever bytes survived, keeps the longest valid record prefix,
    repairs the log in place, and replays snapshot + suffix into a
    store provably {!Probsub_core.Subscription_store.equal_state} to
    the one that wrote the log. Recovery is total (never raises on
    damaged input) and idempotent (recovering a recovered device is a
    fixpoint). *)

module Store := Probsub_core.Subscription_store

type t
(** An attached log: journal hook installed, WAL positioned for
    appending. *)

val fresh :
  ?policy:Store.policy ->
  ?pool:Probsub_core.Domain_pool.t ->
  device:Device.t ->
  arity:int ->
  seed:int ->
  unit ->
  Store.t * t
(** Start a brand-new durable store: clears the device, writes the
    genesis record, creates the store and attaches its journal. *)

type recovered = {
  r_log : t;
  r_store : Store.t;  (** Journal already re-attached. *)
  r_bindings : Codec.binding list;
      (** Live routing bindings, ascending by store id; each
          [b_epoch] already reflects the latest epoch note, so the
          list can be handed straight back to {!compact}. *)
  r_epochs : (int * int) list;  (** [(key, epoch)] for live bindings. *)
  r_fence : int;
      (** Highest replication fence epoch journalled in the surviving
          log (0 when none was ever raised). *)
  r_repaired : bool;
      (** The WAL held damaged bytes that were cut back to the longest
          valid prefix. *)
}

val recover :
  ?pool:Probsub_core.Domain_pool.t ->
  device:Device.t ->
  unit ->
  (recovered, string) result
(** Rebuild from the device. [Error] only when no recoverable state
    exists at all (no valid snapshot and no genesis record) or the
    surviving records are not a journal this library wrote; damaged
    suffixes are repaired, not fatal. *)

val log_binding : t -> Codec.binding -> unit
(** Journal a routing binding (brokers call this right after the add
    that created the id). *)

val log_epoch : t -> key:int -> epoch:int -> unit
(** Journal a refresh-epoch bump for an already-bound key. *)

val log_fence : t -> epoch:int -> unit
(** Journal a replication fence: the broker identity's monotone epoch
    was raised to [epoch]. Monotone — a fence at or below the current
    one is a no-op, so replaying a fence is idempotent. *)

val fence : t -> int
(** Highest fence epoch journalled so far (0 when none). *)

val compact : t -> Store.t -> bindings:Codec.binding list -> unit
(** Write a snapshot of the store image and [bindings], then truncate
    the WAL. Crash-safe at every point: the snapshot replaces the old
    one atomically and carries [last_lsn], so records still in the WAL
    from before the compaction are skipped on replay rather than
    double-applied. *)

val wal_size : t -> int
(** Current WAL length in bytes (the compaction trigger input). *)

val next_lsn : t -> int
val device : t -> Device.t

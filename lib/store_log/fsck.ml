module Store = Probsub_core.Subscription_store

type verdict = {
  v_offset : int;
  v_bytes : int;
  v_lsn : int option;
  v_kind : string;
  v_status : string;
}

type report = {
  wal_total : int;
  wal_valid : int;
  wal_records : verdict list;
  wal_stop : string;
  snapshot_present : bool;
  snapshot_ok : bool;
  snapshot_detail : string;
  recoverable : bool;
  clean : bool;
}

let record_kind = function
  | Codec.Genesis _ -> "genesis"
  | Codec.Op (Store.Op_add _) -> "op:add"
  | Codec.Op (Store.Op_remove _) -> "op:remove"
  | Codec.Op (Store.Op_renew _) -> "op:renew"
  | Codec.Op (Store.Op_expire _) -> "op:expire"
  | Codec.Bind _ -> "bind"
  | Codec.Epoch_note _ -> "epoch-note"
  | Codec.Snapshot _ -> "snapshot"
  | Codec.Fence _ -> "fence"

let stop_verdict (scanned : Wal.scanned) =
  match scanned.Wal.stop with
  | Wal.Clean -> None
  | Wal.Truncated n ->
      Some
        {
          v_offset = scanned.Wal.valid_bytes;
          v_bytes = n;
          v_lsn = None;
          v_kind = "?";
          v_status = "truncated";
        }
  | Wal.Corrupt { offset; reason } ->
      let status =
        match reason with
        | "bad crc" -> "bad-crc"
        | "bad length" -> "bad-length"
        | _ -> "undecodable"
      in
      Some
        {
          v_offset = offset;
          v_bytes = 0;
          v_lsn = None;
          v_kind = "?";
          v_status = status;
        }

let run (device : Device.t) =
  let wal_bytes = device.Device.read_wal () in
  let scanned = Wal.scan wal_bytes in
  let ok_verdicts =
    List.map
      (fun (e : Wal.entry) ->
        {
          v_offset = e.Wal.e_offset;
          v_bytes = e.Wal.e_bytes;
          v_lsn = Some e.Wal.e_lsn;
          v_kind = record_kind e.Wal.e_record;
          v_status = "ok";
        })
      scanned.Wal.records
  in
  let wal_records =
    match stop_verdict scanned with
    | None -> ok_verdicts
    | Some v -> ok_verdicts @ [ v ]
  in
  let wal_stop =
    match scanned.Wal.stop with
    | Wal.Clean -> "clean"
    | Wal.Truncated _ -> "truncated"
    | Wal.Corrupt _ -> "corrupt"
  in
  let snapshot_present, snapshot_ok, snapshot_detail =
    match device.Device.read_snapshot () with
    | None -> (false, true, "absent")
    | Some bytes -> (
        match Codec.read_frame bytes ~pos:0 with
        | Codec.Frame { payload; next; _ } -> (
            if next <> String.length bytes then
              (true, false, "trailing bytes after snapshot frame")
            else
              match Codec.decode payload with
              | Ok (Codec.Snapshot { last_lsn; image; _ }) ->
                  ( true,
                    true,
                    Printf.sprintf "ok (last_lsn %d, %d entries)" last_lsn
                      (List.length image.Store.i_entries) )
              | Ok r ->
                  (true, false, "unexpected record kind: " ^ record_kind r)
              | Error reason -> (true, false, reason))
        | Codec.Frame_truncated -> (true, false, "truncated frame")
        | Codec.Frame_bad_length -> (true, false, "bad length")
        | Codec.Frame_bad_crc -> (true, false, "bad crc")
        | Codec.Frame_undecodable reason -> (true, false, reason))
  in
  let wal_has_genesis =
    match scanned.Wal.records with
    | { Wal.e_record = Codec.Genesis _; _ } :: _ -> true
    | _ -> false
  in
  let recoverable = (snapshot_present && snapshot_ok) || wal_has_genesis in
  let clean =
    scanned.Wal.stop = Wal.Clean
    && snapshot_ok
    && (recoverable || (scanned.Wal.records = [] && not snapshot_present))
  in
  {
    wal_total = scanned.Wal.total_bytes;
    wal_valid = scanned.Wal.valid_bytes;
    wal_records;
    wal_stop;
    snapshot_present;
    snapshot_ok;
    snapshot_detail;
    recoverable;
    clean;
  }

let pp fmt r =
  Format.fprintf fmt "snapshot: %s%s@."
    (if r.snapshot_present then "present" else "absent")
    (if r.snapshot_present then ", " ^ r.snapshot_detail else "");
  Format.fprintf fmt "wal: %d bytes, %d valid, stop=%s@." r.wal_total
    r.wal_valid r.wal_stop;
  List.iter
    (fun v ->
      Format.fprintf fmt "  @[%8d  %-10s %-9s%s@]@." v.v_offset v.v_kind
        v.v_status
        (match v.v_lsn with
        | Some lsn -> Printf.sprintf "  lsn=%d" lsn
        | None -> ""))
    r.wal_records;
  Format.fprintf fmt "recoverable: %b@.clean: %b@." r.recoverable r.clean

let to_json r =
  let buf = Buffer.create 512 in
  let verdict v =
    Printf.sprintf
      "{\"offset\":%d,\"bytes\":%d,\"lsn\":%s,\"kind\":%S,\"status\":%S}"
      v.v_offset v.v_bytes
      (match v.v_lsn with Some l -> string_of_int l | None -> "null")
      v.v_kind v.v_status
  in
  Buffer.add_string buf "{";
  Buffer.add_string buf
    (Printf.sprintf "\"wal_total\":%d,\"wal_valid\":%d,\"wal_stop\":%S,"
       r.wal_total r.wal_valid r.wal_stop);
  Buffer.add_string buf "\"wal_records\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (verdict v))
    r.wal_records;
  Buffer.add_string buf "],";
  Buffer.add_string buf
    (Printf.sprintf
       "\"snapshot_present\":%b,\"snapshot_ok\":%b,\"snapshot_detail\":%S,"
       r.snapshot_present r.snapshot_ok r.snapshot_detail);
  Buffer.add_string buf
    (Printf.sprintf "\"recoverable\":%b,\"clean\":%b}" r.recoverable r.clean);
  Buffer.contents buf

open Probsub_core

type meta = {
  m_arity : int;
  m_seed : int;
  m_policy : Subscription_store.policy;
}

type binding = {
  b_rid : Subscription_store.id;
  b_key : int;
  b_okind : int;
  b_oarg : int;
  b_epoch : int;
}

type record =
  | Genesis of meta
  | Op of Subscription_store.op
  | Bind of binding
  | Epoch_note of { key : int; epoch : int }
  | Snapshot of {
      meta : meta;
      last_lsn : int;
      image : Subscription_store.image;
      bindings : binding list;
    }
  | Fence of { epoch : int }

let max_frame = 1 lsl 26 (* 64 MiB: far above any real record *)

(* ---------------- writer ---------------- *)

(* Unsigned LEB128. Negative ints go through zigzag first. *)
let w_uv b v =
  if v < 0 then invalid_arg "Codec: negative value in unsigned field";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))
let w_sv b v = w_uv b (zigzag v)

let w_f64 b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

let w_sub b sub =
  let ranges = Subscription.ranges sub in
  w_uv b (Array.length ranges);
  Array.iter
    (fun r ->
      w_sv b (Interval.lo r);
      w_sv b (Interval.hi r))
    ranges

let w_placement b (p : Subscription_store.placement) =
  match p with
  | Subscription_store.Active -> w_uv b 0
  | Subscription_store.Covered by ->
      w_uv b 1;
      w_uv b (List.length by);
      List.iter (w_uv b) by

let w_reclassified b rs =
  w_uv b (List.length rs);
  List.iter
    (fun (id, pl) ->
      w_uv b id;
      w_placement b pl)
    rs

let w_policy b (p : Subscription_store.policy) =
  match p with
  | Subscription_store.No_coverage -> w_uv b 0
  | Subscription_store.Pairwise_policy -> w_uv b 1
  | Subscription_store.Group_policy c ->
      w_uv b 2;
      w_f64 b c.Engine.delta;
      let flag bit cond = if cond then 1 lsl bit else 0 in
      w_uv b
        (flag 0 c.Engine.use_fast_decisions
        lor flag 1 c.Engine.use_mcs
        lor flag 2 c.Engine.use_probes
        lor flag 3 c.Engine.use_pruning);
      w_uv b c.Engine.max_iterations

let w_meta b m =
  w_uv b m.m_arity;
  w_sv b m.m_seed;
  w_policy b m.m_policy

let w_op b (op : Subscription_store.op) =
  match op with
  | Subscription_store.Op_add { id; sub; placement; expires_at } ->
      w_uv b 0;
      w_uv b id;
      w_f64 b expires_at;
      w_placement b placement;
      w_sub b sub
  | Subscription_store.Op_remove { id; reclassified } ->
      w_uv b 1;
      w_uv b id;
      w_reclassified b reclassified
  | Subscription_store.Op_renew { id; expires_at } ->
      w_uv b 2;
      w_uv b id;
      w_f64 b expires_at
  | Subscription_store.Op_expire { now; expired; reclassified } ->
      w_uv b 3;
      w_f64 b now;
      w_uv b (List.length expired);
      List.iter (w_uv b) expired;
      w_reclassified b reclassified

let w_binding b bd =
  w_uv b bd.b_rid;
  w_uv b bd.b_key;
  w_uv b bd.b_okind;
  w_sv b bd.b_oarg;
  w_uv b bd.b_epoch

let w_image b (img : Subscription_store.image) =
  w_uv b img.Subscription_store.i_next_id;
  w_uv b img.Subscription_store.i_splits;
  w_uv b (List.length img.Subscription_store.i_entries);
  List.iter
    (fun (id, sub, placement, expires_at) ->
      w_uv b id;
      w_f64 b expires_at;
      w_placement b placement;
      w_sub b sub)
    img.Subscription_store.i_entries

let encode record =
  let b = Buffer.create 64 in
  (match record with
  | Genesis m ->
      w_uv b 1;
      w_meta b m
  | Op op ->
      w_uv b 2;
      w_op b op
  | Bind bd ->
      w_uv b 3;
      w_binding b bd
  | Epoch_note { key; epoch } ->
      w_uv b 4;
      w_uv b key;
      w_uv b epoch
  | Snapshot { meta; last_lsn; image; bindings } ->
      w_uv b 5;
      w_meta b meta;
      w_uv b last_lsn;
      w_image b image;
      w_uv b (List.length bindings);
      List.iter (w_binding b) bindings
  | Fence { epoch } ->
      w_uv b 6;
      w_uv b epoch);
  Buffer.contents b

(* ---------------- reader ---------------- *)

(* Internal-only exception: every public entry point catches it and
   returns a result, so decoding is total at the API boundary. *)
exception Bad of string

let r_uv s pos =
  let n = String.length s in
  let v = ref 0 and shift = ref 0 and p = ref pos in
  let continue = ref true in
  while !continue do
    if !p >= n then raise (Bad "varint: truncated");
    if !shift > 62 then raise (Bad "varint: overflow");
    let byte = Char.code s.[!p] in
    incr p;
    v := !v lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  (!v, !p)

let r_sv s pos =
  let v, p = r_uv s pos in
  (unzigzag v, p)

let r_f64 s pos =
  if pos + 8 > String.length s then raise (Bad "float: truncated");
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[pos + i]))
  done;
  (Int64.float_of_bits !bits, pos + 8)

(* Bounded list length: a CRC-valid record never carries an absurd
   count, but decoding stays total even against crafted input. *)
let r_len what s pos =
  let v, p = r_uv s pos in
  if v > max_frame then raise (Bad (what ^ ": absurd length"));
  (v, p)

let r_sub s pos =
  let m, p = r_len "subscription arity" s pos in
  if m < 1 then raise (Bad "subscription: arity < 1");
  let ranges = Array.make m Interval.full in
  let p = ref p in
  for i = 0 to m - 1 do
    let lo, p1 = r_sv s !p in
    let hi, p2 = r_sv s p1 in
    (match Interval.make_opt ~lo ~hi with
    | Some r -> ranges.(i) <- r
    | None -> raise (Bad "subscription: empty interval"));
    p := p2
  done;
  (Subscription.make ranges, !p)

let r_placement s pos : Subscription_store.placement * int =
  let tag, p = r_uv s pos in
  match tag with
  | 0 -> (Subscription_store.Active, p)
  | 1 ->
      let n, p = r_len "coverer list" s p in
      let ids = ref [] and p = ref p in
      for _ = 1 to n do
        let id, p' = r_uv s !p in
        ids := id :: !ids;
        p := p'
      done;
      (Subscription_store.Covered (List.rev !ids), !p)
  | _ -> raise (Bad "placement: unknown tag")

let r_reclassified s pos =
  let n, p = r_len "reclassified list" s pos in
  let items = ref [] and p = ref p in
  for _ = 1 to n do
    let id, p1 = r_uv s !p in
    let pl, p2 = r_placement s p1 in
    items := (id, pl) :: !items;
    p := p2
  done;
  (List.rev !items, !p)

let r_policy s pos : Subscription_store.policy * int =
  let tag, p = r_uv s pos in
  match tag with
  | 0 -> (Subscription_store.No_coverage, p)
  | 1 -> (Subscription_store.Pairwise_policy, p)
  | 2 ->
      let delta, p = r_f64 s p in
      let flags, p = r_uv s p in
      let max_iterations, p = r_uv s p in
      if not (delta > 0.0 && delta < 1.0 && max_iterations >= 1) then
        raise (Bad "policy: invalid engine config");
      let bit i = flags land (1 lsl i) <> 0 in
      ( Subscription_store.Group_policy
          (Engine.config ~delta ~use_fast_decisions:(bit 0) ~use_mcs:(bit 1)
             ~use_probes:(bit 2) ~use_pruning:(bit 3) ~max_iterations ()),
        p )
  | _ -> raise (Bad "policy: unknown tag")

let r_meta s pos =
  let m_arity, p = r_uv s pos in
  if m_arity < 1 || m_arity > max_frame then raise (Bad "meta: bad arity");
  let m_seed, p = r_sv s p in
  let m_policy, p = r_policy s p in
  ({ m_arity; m_seed; m_policy }, p)

let r_op s pos : Subscription_store.op * int =
  let tag, p = r_uv s pos in
  match tag with
  | 0 ->
      let id, p = r_uv s p in
      let expires_at, p = r_f64 s p in
      let placement, p = r_placement s p in
      let sub, p = r_sub s p in
      (Subscription_store.Op_add { id; sub; placement; expires_at }, p)
  | 1 ->
      let id, p = r_uv s p in
      let reclassified, p = r_reclassified s p in
      (Subscription_store.Op_remove { id; reclassified }, p)
  | 2 ->
      let id, p = r_uv s p in
      let expires_at, p = r_f64 s p in
      (Subscription_store.Op_renew { id; expires_at }, p)
  | 3 ->
      let now, p = r_f64 s p in
      let n, p = r_len "expired list" s p in
      let expired = ref [] and pr = ref p in
      for _ = 1 to n do
        let id, p' = r_uv s !pr in
        expired := id :: !expired;
        pr := p'
      done;
      let reclassified, p = r_reclassified s !pr in
      ( Subscription_store.Op_expire
          { now; expired = List.rev !expired; reclassified },
        p )
  | _ -> raise (Bad "op: unknown tag")

let r_binding s pos =
  let b_rid, p = r_uv s pos in
  let b_key, p = r_uv s p in
  let b_okind, p = r_uv s p in
  let b_oarg, p = r_sv s p in
  let b_epoch, p = r_uv s p in
  ({ b_rid; b_key; b_okind; b_oarg; b_epoch }, p)

let r_image s pos : Subscription_store.image * int =
  let i_next_id, p = r_uv s pos in
  let i_splits, p = r_uv s p in
  let n, p = r_len "image entries" s p in
  let entries = ref [] and p = ref p in
  for _ = 1 to n do
    let id, p1 = r_uv s !p in
    let expires_at, p2 = r_f64 s p1 in
    let placement, p3 = r_placement s p2 in
    let sub, p4 = r_sub s p3 in
    entries := (id, sub, placement, expires_at) :: !entries;
    p := p4
  done;
  ( {
      Subscription_store.i_next_id;
      i_splits;
      i_entries = List.rev !entries;
    },
    !p )

let decode_exn s =
  let tag, p = r_uv s 0 in
  let record, p =
    match tag with
    | 1 ->
        let m, p = r_meta s p in
        (Genesis m, p)
    | 2 ->
        let op, p = r_op s p in
        (Op op, p)
    | 3 ->
        let bd, p = r_binding s p in
        (Bind bd, p)
    | 4 ->
        let key, p = r_uv s p in
        let epoch, p = r_uv s p in
        (Epoch_note { key; epoch }, p)
    | 5 ->
        let meta, p = r_meta s p in
        let last_lsn, p = r_uv s p in
        let image, p = r_image s p in
        let n, p = r_len "bindings" s p in
        let bindings = ref [] and pr = ref p in
        for _ = 1 to n do
          let bd, p' = r_binding s !pr in
          bindings := bd :: !bindings;
          pr := p'
        done;
        (Snapshot { meta; last_lsn; image; bindings = List.rev !bindings }, !pr)
    | 6 ->
        let epoch, p = r_uv s p in
        (Fence { epoch }, p)
    | _ -> raise (Bad "record: unknown tag")
  in
  if p <> String.length s then raise (Bad "record: trailing bytes");
  record

let decode s =
  match decode_exn s with
  | record -> Ok record
  | exception Bad reason -> Error reason
  | exception Invalid_argument reason ->
      (* Subscription.make / Engine.config validation on decoded
         values: still a corrupt record, not a crash. *)
      Error reason

(* ---------------- framing ---------------- *)

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame ~lsn payload =
  if lsn < 0 then invalid_arg "Codec.frame: negative lsn";
  let pb = Buffer.create (String.length payload + 10) in
  w_uv pb lsn;
  Buffer.add_string pb payload;
  let full = Buffer.contents pb in
  if String.length full > max_frame then
    invalid_arg "Codec.frame: payload exceeds max_frame";
  let b = Buffer.create (String.length full + 8) in
  put_u32 b (String.length full);
  put_u32 b (Crc32.string_crc full ~pos:0 ~len:(String.length full));
  Buffer.add_string b full;
  Buffer.contents b

type frame_result =
  | Frame of { lsn : int; payload : string; next : int }
  | Frame_truncated
  | Frame_bad_length
  | Frame_bad_crc
  | Frame_undecodable of string

(* ---------------- primitive re-exports ---------------- *)

(* The wire protocol (lib/server) speaks the same primitive encodings
   as the durable records, so the codec exposes them behind a total
   API instead of having the transport grow a parallel implementation
   that could drift. *)
module Prim = struct
  let write_uv = w_uv
  let write_sv = w_sv
  let write_f64 = w_f64
  let write_subscription = w_sub

  let total f s ~pos =
    match f s pos with
    | v -> Ok v
    | exception Bad reason -> Error reason
    | exception Invalid_argument reason -> Error reason

  let read_uv s ~pos = total r_uv s ~pos
  let read_sv s ~pos = total r_sv s ~pos
  let read_f64 s ~pos = total r_f64 s ~pos
  let read_subscription s ~pos = total r_sub s ~pos
end

(* ---------------- incremental decoder ---------------- *)

(* Streaming counterpart of [read_frame]: a socket read loop feeds
   whatever chunk arrived and pops whole frames, with the partial tail
   retained across calls — no whole-message buffering on the caller's
   side, and torn frames simply wait for the missing bytes. The flat
   [bytes] window is compacted in place: [pos] walks forward as frames
   are consumed and the live suffix is blitted back to the front
   before a refill would grow the buffer. *)
module Decoder = struct
  type item =
    | D_frame of { lsn : int; payload : string }
    | D_need_more
    | D_corrupt of string

  type t = {
    mutable buf : bytes;
    mutable pos : int;  (* start of unconsumed bytes *)
    mutable len : int;  (* unconsumed byte count *)
    mutable dead : string option;  (* sticky corruption verdict *)
  }

  let create () = { buf = Bytes.create 4096; pos = 0; len = 0; dead = None }
  let buffered t = t.len

  let compact t =
    if t.pos > 0 then begin
      Bytes.blit t.buf t.pos t.buf 0 t.len;
      t.pos <- 0
    end

  let reserve t extra =
    let need = t.len + extra in
    if t.pos + need > Bytes.length t.buf then begin
      compact t;
      if need > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf * 2) in
        while !cap < need do
          cap := !cap * 2
        done;
        let fresh = Bytes.create !cap in
        Bytes.blit t.buf 0 fresh 0 t.len;
        t.buf <- fresh
      end
    end

  let feed t src ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length src then
      invalid_arg "Codec.Decoder.feed: bad slice";
    reserve t len;
    Bytes.blit src pos t.buf (t.pos + t.len) len;
    t.len <- t.len + len

  let feed_string t s =
    feed t
      (Bytes.unsafe_of_string s
      [@problint.allow
        unsafe
          "zero-copy read-only view: feed only blits out of the source \
           slice, never writes it"])
      ~pos:0 ~len:(String.length s)

  let get_u32b b pos =
    Char.code (Bytes.get b pos)
    lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
    lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
    lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

  let next t =
    match t.dead with
    | Some reason -> D_corrupt reason
    | None ->
        if t.len < 8 then D_need_more
        else begin
          let flen = get_u32b t.buf t.pos in
          if flen > max_frame then begin
            t.dead <- Some "frame length exceeds max_frame";
            D_corrupt "frame length exceeds max_frame"
          end
          else if t.len < 8 + flen then D_need_more
          else begin
            let crc = get_u32b t.buf (t.pos + 4) in
            let full = Bytes.sub_string t.buf (t.pos + 8) flen in
            if Crc32.string_crc full ~pos:0 ~len:flen <> crc then begin
              t.dead <- Some "frame checksum mismatch";
              D_corrupt "frame checksum mismatch"
            end
            else
              match r_uv full 0 with
              | lsn, p ->
                  t.pos <- t.pos + 8 + flen;
                  t.len <- t.len - (8 + flen);
                  if t.len = 0 then t.pos <- 0;
                  D_frame
                    { lsn; payload = String.sub full p (String.length full - p) }
              | exception Bad reason ->
                  t.dead <- Some reason;
                  D_corrupt reason
          end
        end
end

let read_frame s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then Frame_truncated
  else if n - pos < 8 then Frame_truncated
  else begin
    let len = get_u32 s pos in
    if len > max_frame then Frame_bad_length
    else if pos + 8 + len > n then Frame_truncated
    else begin
      let crc = get_u32 s (pos + 4) in
      if Crc32.string_crc s ~pos:(pos + 8) ~len <> crc then Frame_bad_crc
      else begin
        let full = String.sub s (pos + 8) len in
        match r_uv full 0 with
        | lsn, p ->
            Frame
              {
                lsn;
                payload = String.sub full p (String.length full - p);
                next = pos + 8 + len;
              }
        | exception Bad reason -> Frame_undecodable reason
      end
    end
  end

(* probsub — command-line driver for the probabilistic subsumption
   library: run any paper experiment at a chosen scale, print the
   worked examples, or exercise the chain model. *)

open Cmdliner
open Probsub_core
open Probsub_experiments

let seed_arg =
  let doc = "Random seed (experiments are fully deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let runs_arg =
  let doc =
    "Runs averaged per parameter point. The paper uses 1000 (Figs. 6-10) \
     and 3000 (Figs. 11-12); the default keeps the full sweep fast."
  in
  Arg.(value & opt int 40 & info [ "runs" ] ~docv:"N" ~doc)

let scale_of runs = { Exp_common.runs }

(* A command that parsed fine but failed at runtime raises this; the
   driver at the bottom maps it to exit code 1, distinct from usage
   errors (2) and internal errors (3). *)
exception Runtime_error of string

let runtime_errorf fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* fig command *)

let known_figures =
  [ "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
    "fig14"; "prop5"; "ablation"; "matching"; "traffic"; "merging"; "scaling"; "all" ]

let run_figures ids seed runs =
  let scale = scale_of runs in
  let want id = List.mem "all" ids || List.mem id ids in
  if want "fig6" || want "fig7" then begin
    let f6, f7 = Fig_covering.run ~scale ~seed () in
    if want "fig6" then Exp_common.print_stdout f6;
    if want "fig7" then Exp_common.print_stdout f7
  end;
  if want "fig8" || want "fig9" || want "fig10" then begin
    let f8, f9, f10 = Fig_noncover.run ~scale ~seed () in
    if want "fig8" then Exp_common.print_stdout f8;
    if want "fig9" then Exp_common.print_stdout f9;
    if want "fig10" then Exp_common.print_stdout f10
  end;
  if want "fig11" || want "fig12" then begin
    let f11, f12 = Fig_extreme.run ~scale ~seed () in
    if want "fig11" then Exp_common.print_stdout f11;
    if want "fig12" then Exp_common.print_stdout f12
  end;
  if want "fig13" || want "fig14" then begin
    let n = if runs >= 1000 then 5000 else 2000 in
    let f13, f14 = Fig_comparison.run ~n ~seed () in
    if want "fig13" then Exp_common.print_stdout f13;
    if want "fig14" then Exp_common.print_stdout f14
  end;
  if want "prop5" then begin
    let _, fig = Exp_chain.run ~scale ~seed () in
    Exp_common.print_stdout fig
  end;
  if want "ablation" then Exp_ablation.print (Exp_ablation.run ~scale ~seed ());
  if want "matching" then Exp_matching.print (Exp_matching.run ~seed ());
  if want "traffic" then Exp_traffic.print (Exp_traffic.run ~seed ());
  if want "merging" then Exp_merging.print (Exp_merging.run ~seed ());
  if want "scaling" then
    Exp_scaling.print (Exp_scaling.run ~scale ~seed ())

let fig_cmd =
  let ids =
    let doc =
      Printf.sprintf "Experiments to run: %s."
        (String.concat ", " known_figures)
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids seed runs =
    match List.find_opt (fun id -> not (List.mem id known_figures)) ids with
    | Some bad -> `Error (false, Printf.sprintf "unknown experiment %S" bad)
    | None ->
        run_figures ids seed runs;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate the paper's tables and figures")
    Term.(ret (const run $ ids $ seed_arg $ runs_arg))

(* ------------------------------------------------------------------ *)
(* demo command: the paper's worked examples *)

let demo_cover () =
  let sub = Subscription.of_bounds in
  let s = sub [ (830, 870); (1003, 1006) ] in
  let s1 = sub [ (820, 850); (1001, 1007) ] in
  let s2 = sub [ (840, 880); (1002, 1009) ] in
  Format.printf "Table 3 example: s = %a@." Subscription.pp s;
  Format.printf "  s1 = %a@.  s2 = %a@." Subscription.pp s1 Subscription.pp s2;
  Format.printf "  s1 covers s: %b; s2 covers s: %b@."
    (Subscription.covers_sub s1 s)
    (Subscription.covers_sub s2 s);
  let report = Engine.check ~rng:(Prng.of_int 1) s [| s1; s2 |] in
  (match report.Engine.verdict with
  | Engine.Covered_probably ->
      Format.printf
        "  engine: probabilistic YES after %d iterations (d = %d, error <= %g)@."
        report.Engine.iterations report.Engine.d_used
        (Option.value ~default:Float.nan report.Engine.achieved_delta)
  | Engine.Covered_pairwise i -> Format.printf "  engine: covered by s%d@." (i + 1)
  | Engine.Not_covered _ -> Format.printf "  engine: not covered@.");
  Format.printf "  exact oracle: covered = %b@." (Exact.covered s [| s1; s2 |])

let demo_table () =
  let sub = Subscription.of_bounds in
  let s = sub [ (830, 870); (1003, 1006) ] in
  let s1 = sub [ (820, 850); (1001, 1007) ] in
  let s2 = sub [ (840, 880); (1002, 1009) ] in
  let s3 = sub [ (810, 890); (1004, 1005) ] in
  let t = Conflict_table.build ~s [| s1; s2; s3 |] in
  Format.printf "Conflict table (Tables 5 and 8):@.%a@." Conflict_table.pp t;
  let result = Mcs.run t in
  Format.printf "MCS keeps rows: %s (removed: %s)@."
    (String.concat ", "
       (List.map (fun i -> Printf.sprintf "s%d" (i + 1)) result.Mcs.kept))
    (String.concat ", "
       (List.map (fun i -> Printf.sprintf "s%d" (i + 1)) result.Mcs.removed))

let demo_noncover () =
  let sub = Subscription.of_bounds in
  let s = sub [ (830, 890); (1003, 1006) ] in
  let s1 = sub [ (820, 850); (1002, 1009) ] in
  let s2 = sub [ (840, 870); (1001, 1007) ] in
  Format.printf "Table 6 example (non-cover):@.";
  let report = Engine.check ~rng:(Prng.of_int 1) s [| s1; s2 |] in
  (match report.Engine.verdict with
  | Engine.Not_covered (Engine.Polyhedron w) ->
      Format.printf "  polyhedron witness: %a@." Subscription.pp
        w.Witness.region
  | Engine.Not_covered (Engine.Point p) ->
      Format.printf "  point witness: (%d, %d)@." p.(0) p.(1)
  | Engine.Not_covered Engine.Empty_set ->
      Format.printf "  no candidates at all@."
  | Engine.Covered_pairwise _ | Engine.Covered_probably ->
      Format.printf "  unexpectedly covered?!@.")

let demo_cmd =
  let what =
    let doc = "Which demo: cover, table, or noncover." in
    Arg.(value & pos 0 (enum [ ("cover", `Cover); ("table", `Table); ("noncover", `Noncover) ]) `Cover
         & info [] ~docv:"DEMO" ~doc)
  in
  let run = function
    | `Cover -> demo_cover ()
    | `Table -> demo_table ()
    | `Noncover -> demo_noncover ()
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Print the paper's worked examples (Tables 3-8)")
    Term.(const run $ what)

(* ------------------------------------------------------------------ *)
(* chain command *)

let chain_cmd =
  let brokers =
    Arg.(value & opt int 10 & info [ "brokers" ] ~docv:"N" ~doc:"Chain length.")
  in
  let rho =
    Arg.(value & opt float 0.1
         & info [ "rho" ] ~docv:"P" ~doc:"Per-broker publication probability.")
  in
  let run brokers rho seed runs =
    let rows, fig =
      Exp_chain.run ~scale:(scale_of runs) ~n_brokers:brokers ~rho ~seed ()
    in
    Exp_common.print_stdout fig;
    List.iter
      (fun r ->
        Printf.printf
          "delta=%-8g analytic=%.4f measured=%.4f mean-reach=%.2f/%d\n"
          r.Exp_chain.delta r.Exp_chain.analytic r.Exp_chain.measured
          r.Exp_chain.mean_reach brokers)
      rows
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Proposition 5 chain-propagation experiment")
    Term.(const run $ brokers $ rho $ seed_arg $ runs_arg)

(* ------------------------------------------------------------------ *)
(* check / match commands: typed schemas + the sublang text format *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema path =
  match Sublang.parse_schema (read_file path) with
  | Ok codec -> Ok codec
  | Error e -> Error (Printf.sprintf "schema %s: %s" path e)

let load_set codec path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec parse acc n = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        match Sublang.parse_subscription codec line with
        | Ok sub -> parse (sub :: acc) (n + 1) rest
        | Error e -> Error (Printf.sprintf "%s, line %d: %s" path n e))
  in
  parse [] 1 lines

let schema_arg =
  let doc = "Schema file (lines of 'name : int[lo,hi] | enum(..) | flag | minutes')." in
  Arg.(required & opt (some file) None & info [ "schema" ] ~docv:"FILE" ~doc)

let set_arg =
  let doc = "File with one subscription per line (sublang syntax)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SET" ~doc)

let delta_arg =
  Arg.(value & opt float 1e-6
       & info [ "delta" ] ~docv:"P" ~doc:"Acceptable error probability.")

let check_cmd =
  let sub_arg =
    let doc = "The subscription to test, e.g. 'size in [17,19] & brand = X'." in
    Arg.(required & opt (some string) None & info [ "sub" ] ~docv:"EXPR" ~doc)
  in
  let probes_arg =
    let doc =
      "Also try the deterministic witness-guided probes before the random \
       search (sound extension)."
    in
    Arg.(value & flag & info [ "probes" ] ~doc)
  in
  let domains_arg =
    let doc =
      "Run the RSPC stage on this many domains (a worker pool of N-1 plus \
       the caller). The verdict, witness and iteration count are \
       bit-identical to the sequential run for the same seed."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let run schema sub_text set_path delta probes domains seed =
    let ( let* ) = Result.bind in
    match
      let* codec = load_schema schema in
      let* sub =
        Result.map_error
          (Printf.sprintf "--sub: %s")
          (Sublang.parse_subscription codec sub_text)
      in
      let* set = load_set codec set_path in
      Ok (codec, sub, set)
    with
    | Error e -> runtime_errorf "%s" e
    | Ok (_, _, _) when domains < 1 -> `Error (false, "--domains must be >= 1")
    | Ok (codec, sub, set) ->
        let config = Engine.config ~delta ~use_probes:probes () in
        let check_with pool =
          Engine.check ~config ?pool ~rng:(Prng.of_int seed) sub set
        in
        let report =
          if domains = 1 then check_with None
          else
            Domain_pool.with_pool ~workers:(domains - 1) (fun pool ->
                check_with (Some pool))
        in
        Format.printf "subscription: %a@." (Domain_codec.pp_subscription codec) sub;
        Format.printf "against %d existing subscription(s), delta = %g@."
          (Array.length set) delta;
        (match report.Engine.verdict with
        | Engine.Covered_pairwise i ->
            Format.printf
              "VERDICT: covered (deterministic) by line %d: %a@." (i + 1)
              (Domain_codec.pp_subscription codec)
              set.(i)
        | Engine.Covered_probably ->
            Format.printf
              "VERDICT: covered by the union (probabilistic; %d trials, error \
               <= %g)@."
              report.Engine.iterations
              (Option.value ~default:Float.nan report.Engine.achieved_delta)
        | Engine.Not_covered (Engine.Point p) ->
            Format.printf "VERDICT: not covered; witness publication:@.  %a@."
              Publication.pp (Publication.point p)
        | Engine.Not_covered (Engine.Polyhedron w) ->
            Format.printf "VERDICT: not covered; witness region:@.  %a@."
              (Domain_codec.pp_subscription codec)
              w.Witness.region
        | Engine.Not_covered Engine.Empty_set ->
            Format.printf
              "VERDICT: not covered (no candidate could contribute)@.");
        Format.printf
          "pipeline: k %d -> %d after MCS; theoretical log10(d) = %s@."
          report.Engine.k_initial report.Engine.k_reduced
          (match report.Engine.log10_d with
          | Some l -> Printf.sprintf "%.2f" l
          | None -> "n/a");
        `Ok ()
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check whether a subscription is covered by a set (group subsumption)")
    Term.(
      ret
        (const run $ schema_arg $ sub_arg $ set_arg $ delta_arg $ probes_arg
        $ domains_arg $ seed_arg))

let match_cmd =
  let pub_arg =
    let doc = "The publication, e.g. 'bid = 1036, size = 19, brand = X, ...'." in
    Arg.(required & opt (some string) None & info [ "pub" ] ~docv:"EXPR" ~doc)
  in
  let run schema pub_text set_path =
    let ( let* ) = Result.bind in
    match
      let* codec = load_schema schema in
      let* pub =
        Result.map_error
          (Printf.sprintf "--pub: %s")
          (Sublang.parse_publication codec pub_text)
      in
      let* set = load_set codec set_path in
      Ok (codec, pub, set)
    with
    | Error e -> runtime_errorf "%s" e
    | Ok (codec, pub, set) ->
        let matcher = Counting_matcher.create ~arity:(Domain_codec.arity codec) () in
        Array.iteri (fun i sub -> Counting_matcher.add matcher ~id:(i + 1) sub) set;
        let hits = Counting_matcher.match_publication matcher pub in
        Format.printf "publication matches %d of %d subscription(s)@."
          (List.length hits) (Array.length set);
        List.iter
          (fun line ->
            Format.printf "  line %d: %a@." line
              (Domain_codec.pp_subscription codec)
              set.(line - 1))
          hits;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Match a publication against a subscription file (counting matcher)")
    Term.(ret (const run $ schema_arg $ pub_arg $ set_arg))

(* ------------------------------------------------------------------ *)
(* trace commands *)

let topology_conv =
  let parse s =
    let make name n =
      match name with
      | "chain" -> Ok (Probsub_broker.Topology.chain n)
      | "ring" -> Ok (Probsub_broker.Topology.ring n)
      | "star" -> Ok (Probsub_broker.Topology.star n)
      | "mesh" -> Ok (Probsub_broker.Topology.full_mesh n)
      | "grid" ->
          let side = max 2 (int_of_float (sqrt (float_of_int n))) in
          Ok (Probsub_broker.Topology.grid ~width:side ~height:side)
      | _ -> Error (`Msg (Printf.sprintf "unknown topology %S" name))
    in
    match String.split_on_char ':' s with
    | [ name ] -> make name 8
    | [ name; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 1 -> make name n
        | _ -> Error (`Msg "topology size must be an integer > 1"))
    | _ -> Error (`Msg "expected NAME or NAME:SIZE")
  in
  Arg.conv
    (parse, fun ppf t -> Format.fprintf ppf "topology(%d)" (Probsub_broker.Topology.size t))

let policy_conv =
  Arg.enum
    [
      ("flooding", Subscription_store.No_coverage);
      ("pairwise", Subscription_store.Pairwise_policy);
      ("group", Subscription_store.Group_policy (Engine.config ~delta:1e-6 ()));
    ]

let trace_generate_cmd =
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let duration =
    Arg.(value & opt float 100.0
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated duration.")
  in
  let brokers =
    Arg.(value & opt int 8 & info [ "brokers" ] ~docv:"N" ~doc:"Broker count.")
  in
  let m =
    Arg.(value & opt int 5 & info [ "attributes" ] ~docv:"M" ~doc:"Attributes.")
  in
  let run out duration brokers m seed =
    let params =
      { Probsub_broker.Trace.default_params with duration; brokers; m }
    in
    let trace = Probsub_broker.Trace.generate ~params (Prng.of_int seed) in
    Probsub_broker.Trace.save trace ~path:out;
    let subs, unsubs, pubs = Probsub_broker.Trace.stats trace in
    Printf.printf "wrote %s: %d subscribes, %d unsubscribes, %d publishes\n"
      out subs unsubs pubs
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a workload trace file")
    Term.(const run $ out $ duration $ brokers $ m $ seed_arg)

let crash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ b; start; stop ] -> (
        match
          (int_of_string_opt b, float_of_string_opt start, float_of_string_opt stop)
        with
        | Some b, Some start, Some stop when b >= 0 && start >= 0.0 && stop > start
          ->
            Ok (b, start, stop)
        | _ -> Error (`Msg "expected BROKER:START:STOP with 0 <= start < stop"))
    | _ -> Error (`Msg "expected BROKER:START:STOP")
  in
  Arg.conv
    ( parse,
      fun ppf (b, start, stop) -> Format.fprintf ppf "%d:%g:%g" b start stop )

let trace_replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let topo =
    Arg.(value & opt topology_conv (Probsub_broker.Topology.chain 8)
         & info [ "topology" ] ~docv:"NAME[:SIZE]"
             ~doc:"chain, ring, star, mesh or grid, e.g. ring:12.")
  in
  let policy =
    Arg.(value & opt policy_conv Subscription_store.Pairwise_policy
         & info [ "policy" ] ~docv:"POLICY" ~doc:"flooding, pairwise or group.")
  in
  let drop =
    Arg.(value & opt float 0.0
         & info [ "drop" ] ~docv:"P" ~doc:"Per-hop loss probability.")
  in
  let duplicate =
    Arg.(value & opt float 0.0
         & info [ "duplicate" ] ~docv:"P"
             ~doc:"Per-hop duplication probability.")
  in
  let jitter =
    Arg.(value & opt float 0.0
         & info [ "jitter" ] ~docv:"SECONDS"
             ~doc:"Extra per-hop latency, uniform over [0, JITTER].")
  in
  let fault_until =
    Arg.(value & opt float infinity
         & info [ "fault-until" ] ~docv:"TIME"
             ~doc:"Stop injecting link faults at this simulated time.")
  in
  let crashes =
    Arg.(value & opt_all crash_conv []
         & info [ "crash" ] ~docv:"BROKER:START:STOP"
             ~doc:"Crash a broker over a time window; repeatable. The \
                   broker loses all soft state and recovers it from \
                   lease refreshes (requires $(b,--lease)).")
  in
  let lease =
    Arg.(value & opt (some float) None
         & info [ "lease" ] ~docv:"TTL"
             ~doc:"Enable lease-based recovery: subscriptions lease for \
                   TTL seconds, refreshed every TTL/3, with an acked, \
                   retransmitted control channel.")
  in
  let wal =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"DIR"
             ~doc:"Make every broker's routing table durable: per-broker \
                   write-ahead logs under $(docv)/broker-N. Brokers \
                   crashed by $(b,--crash) recover their routing state \
                   from the WAL on restart instead of starting empty.")
  in
  let run file topo policy drop duplicate jitter fault_until crashes lease wal
      seed =
    match Probsub_broker.Trace.load ~path:file with
    | Error e -> runtime_errorf "%s: %s" file e
    | Ok trace ->
        let arity =
          match
            List.find_map
              (function
                | Probsub_broker.Trace.Subscribe { sub; _ } ->
                    Some (Subscription.arity sub)
                | Probsub_broker.Trace.Publish { pub; _ } ->
                    Some (Publication.arity pub)
                | Probsub_broker.Trace.Unsubscribe _ -> None)
              trace
          with
          | Some a -> a
          | None -> 1
        in
        match
          let fault_plan =
            if drop = 0.0 && duplicate = 0.0 && jitter = 0.0 && crashes = []
            then Probsub_broker.Fault_plan.zero
            else
              Probsub_broker.Fault_plan.create ~drop ~duplicate ~jitter
                ~crashes ~active_until:fault_until ~seed ()
          in
          let recovery =
            Option.map
              (fun ttl ->
                {
                  Probsub_broker.Network.default_recovery with
                  lease_ttl = ttl;
                  refresh_interval = ttl /. 3.0;
                })
              lease
          in
          let devices =
            Option.map
              (fun dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                Array.init (Probsub_broker.Topology.size topo) (fun i ->
                    Probsub_store_log.Device.fs
                      ~dir:(Filename.concat dir (Printf.sprintf "broker-%d" i))))
              wal
          in
          Probsub_broker.Network.create ~policy ~fault_plan ?recovery ?devices
            ~topology:topo ~arity ~seed ()
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | net ->
            Probsub_broker.Trace.replay net trace;
            let m = Probsub_broker.Network.metrics net in
            Format.printf "%a@." Probsub_broker.Metrics.pp m;
            `Ok ()
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a trace file against a simulated network, optionally \
          injecting link faults and broker crashes")
    Term.(
      ret
        (const run $ file $ topo $ policy $ drop $ duplicate $ jitter
       $ fault_until $ crashes $ lease $ wal $ seed_arg))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Generate and replay workload traces")
    [ trace_generate_cmd; trace_replay_cmd ]

let store_dir_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"DIR"
           ~doc:"Directory holding a broker's wal.log / snapshot.bin.")

let store_fsck_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit a machine-readable report for CI.")
  in
  let run dir json =
    if not (Sys.file_exists dir) then
      runtime_errorf "%s: no such directory" dir;
    let device = Probsub_store_log.Device.fs ~dir in
    let report = Probsub_store_log.Fsck.run device in
    if json then print_endline (Probsub_store_log.Fsck.to_json report)
    else Format.printf "%a" Probsub_store_log.Fsck.pp report;
    if not report.Probsub_store_log.Fsck.clean then
      runtime_errorf "%s: corruption detected (see report above)" dir
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Walk a write-ahead log and snapshot, report a per-record \
          CRC/length verdict and the recoverable prefix; exit non-zero \
          when anything is damaged")
    Term.(const run $ store_dir_arg $ json)

let store_compact_cmd =
  let run dir =
    if not (Sys.file_exists dir) then
      runtime_errorf "%s: no such directory" dir;
    let device = Probsub_store_log.Device.fs ~dir in
    match Probsub_store_log.Store_log.recover ~device () with
    | Error msg -> runtime_errorf "%s: %s" dir msg
    | Ok r ->
        let open Probsub_store_log in
        let before = Store_log.wal_size r.Store_log.r_log in
        Store_log.compact r.Store_log.r_log r.Store_log.r_store
          ~bindings:r.Store_log.r_bindings;
        Printf.printf "compacted %s: wal %d -> %d bytes, %d live entries%s\n"
          dir before
          (Store_log.wal_size r.Store_log.r_log)
          (Subscription_store.size r.Store_log.r_store)
          (if r.Store_log.r_repaired then " (repaired a damaged tail)"
           else "")
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Recover a store from its write-ahead log (repairing a damaged \
          tail if needed), write a snapshot and truncate the log")
    Term.(const run $ store_dir_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain durable subscription-store logs")
    [ store_fsck_cmd; store_compact_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / loadgen / chaos: the real broker fleet over Unix sockets *)

let sock_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "sock-dir" ] ~docv:"DIR"
        ~doc:
          "Directory of the fleet's Unix-domain sockets \
           ($(i,broker-N.sock)); brokers create their own socket here, \
           clients dial into it.")

let serve_cmd =
  let id =
    Arg.(
      required
      & opt (some int) None
      & info [ "id" ] ~docv:"N" ~doc:"This broker's id.")
  in
  let neighbors =
    Arg.(
      value
      & opt (list int) []
      & info [ "neighbors" ] ~docv:"IDS"
          ~doc:"Comma-separated neighbour broker ids to dial.")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Journal the routing table under $(docv); an existing \
             directory is recovered, not wiped, so a kill -9'd broker \
             restarted on the same $(docv) resumes with its state.")
  in
  let arity =
    Arg.(value & opt int 2 & info [ "arity" ] ~docv:"M" ~doc:"Attributes.")
  in
  let refresh =
    Arg.(
      value
      & opt float 10.0
      & info [ "refresh" ] ~docv:"SECONDS" ~doc:"Lease refresh interval.")
  in
  let lease =
    Arg.(
      value
      & opt float 30.0
      & info [ "lease" ] ~docv:"SECONDS" ~doc:"Subscription lease TTL.")
  in
  let standby_of =
    Arg.(
      value
      & opt (some string) None
      & info [ "standby-of" ] ~docv:"SOCKET"
          ~doc:
            "Run as a hot standby of the primary listening on $(docv) \
             (same broker id): stream its WAL into this process's \
             $(b,--wal) directory and take over — raising the fence \
             epoch and binding the primary's socket path — when its \
             heartbeats stop. Requires $(b,--wal).")
  in
  let hb_interval =
    Arg.(
      value
      & opt float 0.5
      & info [ "repl-hb-interval" ] ~docv:"SECONDS"
          ~doc:"Primary-to-standby replication heartbeat period.")
  in
  let hb_timeout =
    Arg.(
      value
      & opt float 2.0
      & info [ "repl-hb-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Heartbeat silence after which a standby declares its \
             primary dead and promotes itself.")
  in
  let run id neighbors sock_dir wal arity refresh lease standby_of hb_interval
      hb_timeout seed =
    match
      Probsub_server.Broker_server.config ~id ~neighbors ~sock_dir ~arity ~seed
        ~wal_dir:wal ~refresh_interval:refresh ~lease_ttl:lease
        ~standby_of ~repl_hb_interval:hb_interval ~repl_hb_timeout:hb_timeout
        ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | cfg ->
        (try Probsub_server.Broker_server.run cfg
         with Unix.Unix_error (e, fn, arg) ->
           runtime_errorf "serve: %s %s: %s" fn arg (Unix.error_message e));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one broker process: a select loop serving the broker \
          protocol on a Unix-domain socket, with retry/backoff links to \
          its neighbours, optional WAL durability, and optional \
          hot-standby replication")
    Term.(
      ret
        (const run $ id $ neighbors $ sock_dir_arg $ wal $ arity $ refresh
       $ lease $ standby_of $ hb_interval $ hb_timeout $ seed_arg))

let now_wall = Unix.gettimeofday

let pump_clients clients seconds =
  let t0 = now_wall () in
  while now_wall () -. t0 < seconds do
    Probsub_server.Loadgen.poll_all clients;
    try Unix.sleepf 0.002 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let loadgen_json (r : Probsub_server.Loadgen.result) =
  let open Probsub_server.Loadgen in
  Printf.sprintf
    "{\n\
    \  \"connections\": %d,\n\
    \  \"subscriptions\": %d,\n\
    \  \"pubs\": %d,\n\
    \  \"expected\": %d,\n\
    \  \"delivered\": %d,\n\
    \  \"pubs_per_sec\": %.1f,\n\
    \  \"p50_ms\": %.3f,\n\
    \  \"p99_ms\": %.3f,\n\
    \  \"verdicts_match\": %b,\n\
    \  \"audit_clean\": %b\n\
     }"
    r.clients r.subscriptions r.pubs r.expected r.delivered r.pubs_per_sec
    r.p50_ms r.p99_ms r.verdicts_match
    (Probsub_broker.Audit.is_clean r.audit)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let print_loadgen_result (r : Probsub_server.Loadgen.result) =
  let open Probsub_server.Loadgen in
  Printf.printf
    "clients=%d subscriptions=%d pubs=%d expected=%d delivered=%d\n\
     %.1f pubs/s, match latency p50=%.3fms p99=%.3fms\n\
     verdicts byte-identical to in-process engine: %b\n"
    r.clients r.subscriptions r.pubs r.expected r.delivered r.pubs_per_sec
    r.p50_ms r.p99_ms r.verdicts_match

let loadgen_cmd =
  let brokers =
    Arg.(
      value
      & opt int 3
      & info [ "brokers" ] ~docv:"N"
          ~doc:"Fleet size; clients attach to brokers 0..N-1.")
  in
  let clients_per =
    Arg.(
      value
      & opt int 2
      & info [ "clients-per-broker" ] ~docv:"K" ~doc:"Clients per broker.")
  in
  let subs =
    Arg.(
      value
      & opt int 4
      & info [ "subs-per-client" ] ~docv:"J"
          ~doc:"Random box subscriptions installed per client.")
  in
  let pubs =
    Arg.(
      value
      & opt int 50
      & info [ "pubs" ] ~docv:"P" ~doc:"Publications in the closed loop.")
  in
  let arity =
    Arg.(value & opt int 2 & info [ "arity" ] ~docv:"M" ~doc:"Attributes.")
  in
  let warmup =
    Arg.(
      value
      & opt float 1.0
      & info [ "warmup" ] ~docv:"SECONDS"
          ~doc:
            "Pump this long after installing subscriptions so refresh \
             waves flood them to every broker before measuring.")
  in
  let timeout =
    Arg.(
      value
      & opt float 3.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-publication deadline.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the result as JSON.")
  in
  let run sock_dir brokers clients_per subs pubs arity warmup timeout json seed
      =
    if brokers < 1 || clients_per < 1 || subs < 1 || pubs < 1 then
      `Error (false, "loadgen: empty workload")
    else begin
      let module L = Probsub_server.Loadgen in
      let rng = Prng.of_int seed in
      let clients =
        List.concat
          (List.init brokers (fun b ->
               List.init clients_per (fun j ->
                   L.connect_client ~sock_dir ~broker:b
                     ~client:((b * 100) + j + 1)
                     ~seed:((seed * 7919) + (b * 100) + j)
                     ())))
      in
      Fun.protect
        ~finally:(fun () -> List.iter L.close_client clients)
        (fun () ->
          if not (L.wait_connected clients) then
            runtime_errorf "loadgen: fleet at %s never accepted every client"
              sock_dir;
          let w = L.install ~rng ~arity ~subs_per_client:subs clients in
          if not (L.wait_acked clients) then
            runtime_errorf "loadgen: subscriptions were never acked";
          pump_clients clients warmup;
          let r = L.drive ~rng ~arity ~pubs ~per_pub_timeout:timeout w in
          print_loadgen_result r;
          let reconnects =
            List.fold_left (fun n c -> n + L.failover_reconnects c) 0 clients
          in
          let top_epoch =
            List.fold_left (fun e c -> max e (L.epoch_seen c)) 0 clients
          in
          if reconnects > 0 || top_epoch > 0 then
            Printf.printf "failover reconnects=%d at epoch %d\n" reconnects
              top_epoch;
          Option.iter (fun path -> write_file path (loadgen_json r)) json;
          if not (Probsub_broker.Audit.is_clean r.L.audit && r.L.verdicts_match)
          then
            runtime_errorf
              "loadgen: delivery audit failed (expected=%d delivered=%d \
               verdicts_match=%b)"
              r.L.expected r.L.delivered r.L.verdicts_match);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive an already-running broker fleet with real clients: \
          install a workload, run an audited closed publication loop, \
          report throughput and match-latency percentiles; exits \
          non-zero unless delivery verdicts are byte-identical to the \
          in-process engine")
    Term.(
      ret
        (const run $ sock_dir_arg $ brokers $ clients_per $ subs $ pubs $ arity
       $ warmup $ timeout $ json $ seed_arg))

let chaos_cmd =
  let pubs =
    Arg.(
      value
      & opt int 30
      & info [ "pubs" ] ~docv:"P" ~doc:"Publications per audited phase.")
  in
  let brokers =
    Arg.(
      value & opt int 3 & info [ "brokers" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the result as JSON (the BENCH_serve schema, or \
             BENCH_failover with $(b,--failover)).")
  in
  let failover =
    Arg.(
      value & flag
      & info [ "failover" ]
          ~doc:
            "Instead of restarting the killed broker from its WAL, give \
             it a hot standby and never restart it: the standby must \
             detect the death, promote over the replicated WAL, raise \
             the fence epoch and take over the socket.")
  in
  let run pubs brokers failover json seed =
    let module H = Probsub_server.Harness in
    match H.config ~seed ~pubs ~brokers () with
    | exception Invalid_argument msg -> `Error (false, msg)
    | cc when failover ->
        let r =
          try H.run_failover cc
          with H.Error msg -> runtime_errorf "chaos: %s" msg
        in
        Format.printf "@[<v>%a@]@." H.pp_failover_result r;
        Option.iter
          (fun path ->
            write_file path
              (Printf.sprintf
                 "{\n\
                 \  \"connections\": %d,\n\
                 \  \"pubs_per_sec\": %.1f,\n\
                 \  \"p50_ms\": %.3f,\n\
                 \  \"p99_ms\": %.3f,\n\
                 \  \"detection_seconds\": %.3f,\n\
                 \  \"outage_seconds\": %.3f,\n\
                 \  \"failover_reconnects\": %d,\n\
                 \  \"verdicts_match\": %b,\n\
                 \  \"clean\": %b\n\
                  }"
                 r.H.connections r.H.post.Probsub_server.Loadgen.pubs_per_sec
                 r.H.post.Probsub_server.Loadgen.p50_ms
                 r.H.post.Probsub_server.Loadgen.p99_ms r.H.detection_seconds
                 r.H.outage_seconds r.H.failover_reconnects
                 r.H.post.Probsub_server.Loadgen.verdicts_match r.H.clean))
          json;
        if not r.H.clean then
          runtime_errorf "chaos: audit failed after failover (seed %d)" seed;
        `Ok ()
    | cc ->
        let r = try H.run cc with H.Error msg -> runtime_errorf "chaos: %s" msg in
        Format.printf "@[<v>%a@]@." H.pp_result r;
        Option.iter
          (fun path ->
            write_file path
              (Printf.sprintf
                 "{\n\
                 \  \"connections\": %d,\n\
                 \  \"pubs_per_sec\": %.1f,\n\
                 \  \"p50_ms\": %.3f,\n\
                 \  \"p99_ms\": %.3f,\n\
                 \  \"recovery_seconds\": %.3f,\n\
                 \  \"verdicts_match\": %b,\n\
                 \  \"clean\": %b\n\
                  }"
                 r.H.connections r.H.post.Probsub_server.Loadgen.pubs_per_sec
                 r.H.post.Probsub_server.Loadgen.p50_ms
                 r.H.post.Probsub_server.Loadgen.p99_ms r.H.recovery_seconds
                 r.H.post.Probsub_server.Loadgen.verdicts_match r.H.clean))
          json;
        if not r.H.clean then
          runtime_errorf
            "chaos: audit failed after kill -9 recovery (seed %d)" seed;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Spawn a real broker fleet, kill -9 an interior broker \
          mid-refresh-wave, and audit that the fleet misses nothing — \
          restarting the victim from its WAL, or with $(b,--failover) \
          promoting its hot standby instead")
    Term.(ret (const run $ pubs $ brokers $ failover $ json $ seed_arg))

let main =
  Cmd.group
    (Cmd.info "probsub" ~version:Version.version
       ~doc:
         "Probabilistic subsumption checking for content-based \
          publish/subscribe (Ouksel et al., Middleware 2006)")
    [
      fig_cmd; demo_cmd; chain_cmd; check_cmd; match_cmd; trace_cmd; store_cmd;
      serve_cmd; loadgen_cmd; chaos_cmd;
    ]

(* Exit-code contract (documented in DESIGN.md, relied on by CI):
   0 success; 1 runtime failure inside a well-formed invocation
   (commands raise Runtime_error — I/O failures, corruption, audit
   failures); 2 usage error (anything cmdliner rejects, including our
   `Error ret terms — cmdliner 1.3 reports argv parse errors as `Term,
   so both eval_error cases are usage here); 3 unexpected exception. *)
let () =
  let code =
    try
      match Cmd.eval_value ~catch:false main with
      | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
      | Error (`Parse | `Term) -> 2
      | Error `Exn -> 3
    with
    | Runtime_error msg ->
        Format.eprintf "probsub: %s@." msg;
        1
    | e ->
        Format.eprintf "probsub: internal error: %s@." (Printexc.to_string e);
        3
  in
  exit code

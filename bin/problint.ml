(* problint — the project's static-analysis pass.

   Usage: problint [--json] [--list-rules] [DIR-OR-FILE ...]
   Default scan set: lib bin bench (run from the repo root, or via
   `dune build @lint`). Exit 0 = clean, 1 = findings, 2 = bad usage. *)

let () = exit (Probsub_lint.Lint_driver.main Sys.argv)
